"""Server-side recovery: failure detection and multi-round rescheduling.

The simulator's ``skip_failed_results`` heuristic already rescues the
*tail* of a broken round; this module rescues the *lost work*.  After a
fault-injected round, :func:`simulate_with_recovery` measures which
quanta never made it back, charges the round's elapsed time (last
delivery plus a detection timeout) against the total lifespan, and
reallocates the lost work across the surviving computers with the
existing FIFO allocator on the residual lifespan — round after round,
until everything is recovered or the :class:`RecoveryPolicy` budget
(rounds, residual time, survivors) runs out.

The rescheduler is *adaptive* in the allocator's sense: each recovery
round re-derives an optimal FIFO allocation for whichever computers are
still alive, scaled down so it never schedules more than the work
actually missing.  Faults persist across rounds — the materialised
scenario is time-shifted into each round's local clock, and the channel
loss process is re-salted per round — so recovery itself can fail and be
retried, which is exactly the regime the straggler literature cares
about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.profile import Profile
from repro.errors import (InfeasibleScheduleError, ProtocolError,
                          RecoveryError)
from repro.faults.spec import FaultScenario, MaterializedFaults, parse_faults
from repro.obs.tracing import SimulationObserver, current_observation
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation

if TYPE_CHECKING:  # pragma: no cover - break the faults <-> simulation cycle
    from repro.simulation.runner import SimulationResult

__all__ = ["RecoveryPolicy", "RecoveryTelemetry", "RecoveryOutcome",
           "simulate_with_recovery"]

#: Work below this fraction of the original total counts as recovered.
_WORK_EPS = 1e-9


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the server detects failures and budgets recovery.

    Attributes
    ----------
    detection_timeout:
        Simulated time the server waits after a round's last successful
        delivery before declaring the missing results dead and starting
        a recovery round.  Smaller timeouts leave more residual lifespan
        for recovery; the cap is always the round's own deadline.
    max_rounds:
        Total round budget, the first round included.  ``1`` disables
        recovery entirely.
    min_residual:
        Stop rescheduling once the residual lifespan drops below this.
    """

    detection_timeout: float = 1.0
    max_rounds: int = 3
    min_residual: float = 1e-6

    def __post_init__(self) -> None:
        if self.detection_timeout < 0.0 or not np.isfinite(self.detection_timeout):
            raise RecoveryError(
                f"detection_timeout must be nonnegative and finite, "
                f"got {self.detection_timeout!r}")
        if self.max_rounds < 1:
            raise RecoveryError(
                f"max_rounds must be >= 1, got {self.max_rounds}")
        if self.min_residual <= 0.0:
            raise RecoveryError(
                f"min_residual must be positive, got {self.min_residual!r}")


@dataclass(frozen=True)
class RecoveryTelemetry:
    """What recovery cost and what it bought, across all rounds."""

    rounds: int = 1
    retries: int = 0            # recovery rounds launched (rounds - 1)
    retransmits: int = 0        # channel-level retransmissions, all rounds
    messages_lost: int = 0      # messages lost past their budget, all rounds
    work_recovered: float = 0.0  # work completed in rounds >= 2
    work_lost: float = 0.0       # work still missing when recovery stopped
    faults_injected: int = 0
    elapsed: float = 0.0         # simulated time consumed, detection included

    def as_dict(self) -> dict:
        """Plain-dict form for experiment metadata and JSON export."""
        return {"rounds": self.rounds, "retries": self.retries,
                "retransmits": self.retransmits,
                "messages_lost": self.messages_lost,
                "work_recovered": self.work_recovered,
                "work_lost": self.work_lost,
                "faults_injected": self.faults_injected,
                "elapsed": self.elapsed}


@dataclass(frozen=True)
class RecoveryOutcome:
    """Everything observed across a fault-injected run with recovery."""

    rounds: tuple[SimulationResult, ...]
    telemetry: RecoveryTelemetry
    #: Original-profile computer indices that permanently crashed.
    crashed_computers: tuple[int, ...]

    @property
    def completed_work(self) -> float:
        """Work delivered across all rounds."""
        return float(sum(r.completed_work for r in self.rounds))

    @property
    def first_round(self) -> SimulationResult:
        return self.rounds[0]


def _lost_work(result: SimulationResult) -> float:
    """Work assigned in this round that never made it back."""
    return float(result.allocation.total_work - result.completed_work)


def simulate_with_recovery(allocation: WorkAllocation,
                           faults: "FaultScenario | MaterializedFaults | str | None",
                           *, policy: RecoveryPolicy | None = None,
                           results_policy: str = "late",
                           observer: SimulationObserver | None = None
                           ) -> RecoveryOutcome:
    """Execute ``allocation`` under ``faults`` with multi-round recovery.

    Round 1 runs the given allocation with the skip-failed sequencer (a
    server that reschedules has, a fortiori, given up on the strict
    contract).  While work is missing and the :class:`RecoveryPolicy`
    budget allows, surviving computers are re-profiled, the FIFO
    allocator is run on the residual lifespan, the resulting quanta are
    scaled down to the work actually lost, and the round is simulated
    with the fault scenario shifted into the round's local clock.

    Returns a :class:`RecoveryOutcome`; recovery telemetry is also
    recorded into the ambient (or ``observer``'s) metrics registry as
    ``sim_recovery_*`` series.
    """
    # Imported here, not at module scope: runner itself imports the fault
    # spec, and an eager import would close the cycle.
    from repro.simulation.runner import simulate_allocation

    policy = policy or RecoveryPolicy()
    if isinstance(faults, str):
        faults = parse_faults(faults)
    if isinstance(faults, FaultScenario):
        faults = faults.materialize(allocation.n, allocation.lifespan)
    if faults is None:
        faults = MaterializedFaults()

    total_work = allocation.total_work
    params = allocation.params
    rho = allocation.profile.rho

    rounds: list[SimulationResult] = []
    #: alive[i] = original index of the computer at position i of the
    #: *current* round's profile.
    alive = list(range(allocation.n))
    crashed: list[int] = []
    current_alloc = allocation
    current_faults = faults
    residual = allocation.lifespan
    elapsed_total = 0.0
    retransmits = 0
    messages_lost = 0
    work_recovered = 0.0

    while True:
        result = simulate_allocation(current_alloc, faults=current_faults,
                                     results_policy=results_policy,
                                     skip_failed_results=True,
                                     observer=observer)
        rounds.append(result)
        retransmits += result.retransmits
        messages_lost += result.messages_lost
        if len(rounds) > 1:
            work_recovered += result.completed_work
        crashed.extend(alive[c] for c in result.failed_computers)

        lost = _lost_work(result)
        if lost <= _WORK_EPS * max(1.0, total_work):
            elapsed_total += result.makespan
            lost = 0.0
            break
        # Timeout-based detection: the server waits `detection_timeout`
        # past the last successful delivery for stragglers, capped at the
        # round's own deadline, before declaring the rest dead.
        elapsed = min(current_alloc.lifespan,
                      result.makespan + policy.detection_timeout)
        elapsed_total += elapsed
        residual = allocation.lifespan - elapsed_total

        survivors = [c for c in alive if c not in set(
            alive[i] for i in result.failed_computers)]
        if (len(rounds) >= policy.max_rounds or not survivors
                or residual <= policy.min_residual):
            break
        sub_profile = Profile([float(rho[c]) for c in survivors])
        try:
            plan = fifo_allocation(sub_profile, params, residual)
        except (InfeasibleScheduleError, ProtocolError):
            break  # residual too short for any schedule: give up
        scale = min(1.0, lost / plan.total_work) if plan.total_work > 0 else 0.0
        if scale <= 0.0:
            break
        current_alloc = WorkAllocation(
            profile=sub_profile, params=params, lifespan=residual,
            w=plan.w * scale, startup_order=plan.startup_order,
            finishing_order=plan.finishing_order,
            protocol_name="fifo-recovery")
        current_faults = faults.shifted(
            elapsed_total, survivors=survivors, salt=len(rounds))
        alive = survivors

    telemetry = RecoveryTelemetry(
        rounds=len(rounds),
        retries=len(rounds) - 1,
        retransmits=retransmits,
        messages_lost=messages_lost,
        work_recovered=work_recovered,
        work_lost=lost,
        faults_injected=faults.faults_injected,
        elapsed=elapsed_total,
    )
    _record_recovery_metrics(telemetry, observer)
    return RecoveryOutcome(rounds=tuple(rounds), telemetry=telemetry,
                           crashed_computers=tuple(sorted(set(crashed))))


def _record_recovery_metrics(telemetry: RecoveryTelemetry,
                             observer: SimulationObserver | None) -> None:
    """Fold recovery telemetry into the observer or ambient registry."""
    registry = observer.registry if observer is not None else None
    if registry is None:
        ctx = current_observation()
        registry = ctx.registry if ctx is not None else None
    if registry is None:
        return
    registry.counter("sim_recovery_rounds_total",
                     "simulation rounds executed under recovery"
                     ).inc(telemetry.rounds)
    if telemetry.retries:
        registry.counter("sim_recovery_retries_total",
                         "recovery rounds launched to reclaim lost work"
                         ).inc(telemetry.retries)
    if telemetry.work_recovered:
        registry.counter("sim_work_recovered_total",
                         "work units recovered by rescheduling"
                         ).inc(telemetry.work_recovered)
    if telemetry.work_lost:
        registry.counter("sim_work_lost_total",
                         "work units still missing after recovery"
                         ).inc(telemetry.work_lost)
