"""Fault injection and recovery for CEP worksharing simulations.

The paper's FIFO-optimality result rests on a strict finishing-order
contract; this package measures what that contract costs when the world
misbehaves.  It generalises the simulator's original single fault shape
(a permanent crash at a fixed time) into a pluggable fault model:

* :class:`~repro.faults.models.PermanentCrash` — the classic crash;
* :class:`~repro.faults.models.TransientOutage` — down for an interval,
  then back (progress pauses, nothing is forgotten);
* :class:`~repro.faults.models.DegradedSpeed` — a straggler whose ρ is
  inflated by a factor over a window;
* :class:`~repro.faults.models.SpeedPhase` — first-class time-varying ρ
  (any positive factor, speed-ups included): a declared trajectory, not
  a fault — the ``speeds:`` clause, and what the stream calibrator
  emits for drifting workers;
* :class:`~repro.faults.models.ChannelLoss` — message loss on the shared
  channel, with retransmission under a
  :class:`~repro.faults.models.RetransmitPolicy`.

Scenarios are declared with :class:`~repro.faults.spec.FaultScenario`
(a list of fault specs plus an optional seeded stochastic generator) or
parsed from the CLI's compact ``--faults`` grammar by
:func:`~repro.faults.spec.parse_faults`.  Materialisation is a pure
function of the scenario and its seed, so fault-injected runs stay
deterministic and batch-shardable.

Recovery lives in :mod:`repro.faults.recovery`: timeout-based failure
detection, retransmit budgets, and an adaptive multi-round rescheduler
(:func:`~repro.faults.recovery.simulate_with_recovery`) that reallocates
lost quanta across surviving workers with the FIFO allocator on the
residual lifespan.
"""

from repro.faults.models import (
    ChannelLoss,
    DegradedSpeed,
    FaultTimeline,
    PermanentCrash,
    RetransmitPolicy,
    SpeedPhase,
    TransientOutage,
)
from repro.faults.recovery import (
    RecoveryOutcome,
    RecoveryPolicy,
    RecoveryTelemetry,
    simulate_with_recovery,
)
from repro.faults.spec import FaultScenario, MaterializedFaults, parse_faults

__all__ = [
    "PermanentCrash",
    "TransientOutage",
    "DegradedSpeed",
    "SpeedPhase",
    "FaultTimeline",
    "ChannelLoss",
    "RetransmitPolicy",
    "FaultScenario",
    "MaterializedFaults",
    "parse_faults",
    "RecoveryPolicy",
    "RecoveryTelemetry",
    "RecoveryOutcome",
    "simulate_with_recovery",
]
