"""Declarative fault scenarios and the compact ``--faults`` grammar.

A :class:`FaultScenario` bundles explicit per-computer fault specs, an
optional channel-loss process, a retransmission policy, and an optional
*seeded stochastic generator* (per-worker exponential crash/outage/slow
arrival rates).  :meth:`FaultScenario.materialize` compiles it — for a
concrete cluster size and lifespan — into per-worker
:class:`~repro.faults.models.FaultTimeline` objects plus the channel
model.  Materialisation is a pure function of ``(scenario, n,
lifespan)``: the stochastic draws come from per-worker children of
``np.random.SeedSequence(seed)``, so the same scenario replays
bit-identically anywhere, including across batch-engine shards.

Grammar
-------
``parse_faults`` accepts a comma- (or semicolon-) separated list of
clauses.  Computer indices are 0-based and may be written ``2`` or
``C2``.

=========================  ==================================================
clause                     meaning
=========================  ==================================================
``crash:<c>@<t>``          permanent crash of computer c at time t
``outage:<c>@<t>+<d>``     computer c down over [t, t+d)
``slow:<c>@<t>+<d>x<f>``   computer c runs f× slower over [t, t+d)
``speeds:<c>@<t>+<d>x<f>`` computer c's speed scales by 1/f over [t, t+d):
                           a first-class time-varying-ρ declaration, not a
                           fault — any positive f is allowed (f < 1 is a
                           speed-up); the stream calibrator emits one per
                           drifting worker it observes
``crash~<rate>``           each worker crashes at exponential rate `rate`
``outage~<rate>+<d>``      each worker suffers one outage of length d,
                           arriving at exponential rate `rate`
``slow~<rate>+<d>x<f>``    each worker suffers one f× slowdown window of
                           length d, arriving at exponential rate `rate`
``loss:<p>``               every channel message attempt lost w.p. p
``drop:<kind>:<c>:<k>``    attempt k of computer c's work/result message
                           is deterministically lost
``retransmits:<n>``        retransmission budget per message (default 3)
``backoff:<t>``            base retransmission backoff in sim time units
``maxbackoff:<t>``         cap on any single backoff wait (default: none)
``seed:<n>``               entropy for the stochastic draws (default 0)
=========================  ==================================================

Parse errors name the offending clause *and* its position (clause
index and character offset) in the ``--faults`` string, so multi-clause
specs fail actionably.

Example: ``outage:1@10+5,slow:0@2+20x3,loss:0.05,seed:7`` — a transient
+ straggler + channel-loss mix, fully deterministic under seed 7.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from repro.errors import FaultInjectionError, FaultSpecError
from repro.faults.models import (ChannelLoss, DegradedSpeed, FaultTimeline,
                                 PermanentCrash, RetransmitPolicy,
                                 SpeedPhase, TransientOutage)

__all__ = ["FaultScenario", "MaterializedFaults", "parse_faults"]

WorkerFault = PermanentCrash | TransientOutage | DegradedSpeed | SpeedPhase


@dataclass(frozen=True)
class MaterializedFaults:
    """A scenario compiled against a concrete cluster.

    Attributes
    ----------
    timelines:
        Per-computer fault timelines (computers with no faults may be
        absent).
    channel:
        The channel-loss process, or None for a reliable channel.
    retransmit:
        The network's retransmission policy.
    faults_injected:
        How many individual fault events the compilation produced —
        recovery telemetry, not behaviour.
    """

    timelines: Mapping[int, FaultTimeline] = field(default_factory=dict)
    channel: ChannelLoss | None = None
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    faults_injected: int = 0

    def shifted(self, offset: float, *, survivors: list[int] | None = None,
                salt: int = 0) -> "MaterializedFaults":
        """Re-express the faults for a recovery round.

        ``offset`` is the simulated time already elapsed; ``survivors``
        optionally remaps original computer indices to the recovery
        round's compact sub-profile indices (position in the list).  The
        channel process is re-salted so the round's loss draws are fresh
        but still deterministic.
        """
        if survivors is None:
            timelines = {c: tl.shifted(offset)
                         for c, tl in self.timelines.items()}
        else:
            timelines = {i: self.timelines[c].shifted(offset)
                         for i, c in enumerate(survivors)
                         if c in self.timelines}
        timelines = {c: tl for c, tl in timelines.items() if not tl.is_benign}
        channel = self.channel.with_salt(salt) if self.channel is not None else None
        return MaterializedFaults(timelines=timelines, channel=channel,
                                  retransmit=self.retransmit,
                                  faults_injected=self.faults_injected)


@dataclass(frozen=True)
class FaultScenario:
    """A declarative, optionally stochastic, fault scenario.

    Explicit ``faults`` apply as written.  The stochastic generator adds,
    per worker, at most one crash / outage / slowdown whose arrival time
    is exponential with the given rate (arrivals past the lifespan are
    discarded) — drawn from per-worker ``SeedSequence(seed)`` children,
    so materialisation is deterministic and independent of job count.
    """

    faults: tuple[WorkerFault, ...] = ()
    channel: ChannelLoss | None = None
    retransmit: RetransmitPolicy = field(default_factory=RetransmitPolicy)
    crash_rate: float = 0.0
    outage_rate: float = 0.0
    outage_duration: float = 0.0
    slow_rate: float = 0.0
    slow_duration: float = 0.0
    slow_factor: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_rate", "outage_rate", "slow_rate"):
            value = getattr(self, name)
            if value < 0.0 or not np.isfinite(value):
                raise FaultInjectionError(
                    f"{name} must be nonnegative and finite, got {value!r}")
        if self.outage_rate > 0.0 and self.outage_duration <= 0.0:
            raise FaultInjectionError(
                "outage_rate needs a positive outage_duration")
        if self.slow_rate > 0.0 and (self.slow_duration <= 0.0
                                     or self.slow_factor <= 1.0):
            raise FaultInjectionError(
                "slow_rate needs a positive slow_duration and factor > 1")

    @property
    def is_stochastic(self) -> bool:
        return (self.crash_rate > 0.0 or self.outage_rate > 0.0
                or self.slow_rate > 0.0)

    def materialize(self, n: int, lifespan: float) -> MaterializedFaults:
        """Compile the scenario for an ``n``-computer cluster."""
        for fault in self.faults:
            if not (0 <= fault.computer < n):
                raise FaultInjectionError(
                    f"fault {fault!r} addresses unknown computer "
                    f"{fault.computer} (cluster has {n})")
        per_worker: dict[int, list[WorkerFault]] = {}
        count = 0
        for fault in self.faults:
            per_worker.setdefault(fault.computer, []).append(fault)
            count += 1
        if self.is_stochastic:
            for c, seq in enumerate(np.random.SeedSequence(self.seed).spawn(n)):
                rng = np.random.default_rng(seq)
                # Fixed draw order per worker keeps the scenario stable
                # when one rate is toggled: crash, then outage, then slow.
                if self.crash_rate > 0.0:
                    t = float(rng.exponential(1.0 / self.crash_rate))
                    if t < lifespan:
                        per_worker.setdefault(c, []).append(
                            PermanentCrash(c, t))
                        count += 1
                if self.outage_rate > 0.0:
                    t = float(rng.exponential(1.0 / self.outage_rate))
                    if t < lifespan:
                        per_worker.setdefault(c, []).append(
                            TransientOutage(c, t, self.outage_duration))
                        count += 1
                if self.slow_rate > 0.0:
                    t = float(rng.exponential(1.0 / self.slow_rate))
                    if t < lifespan:
                        per_worker.setdefault(c, []).append(
                            DegradedSpeed(c, t, self.slow_duration,
                                          self.slow_factor))
                        count += 1
        timelines = {c: FaultTimeline.compile(faults)
                     for c, faults in per_worker.items()}
        timelines = {c: tl for c, tl in timelines.items() if not tl.is_benign}
        channel = self.channel
        if channel is not None and channel.is_benign:
            channel = None
        if channel is not None:
            channel = replace(channel, seed=channel.seed or self.seed)
            count += 1
        return MaterializedFaults(timelines=timelines, channel=channel,
                                  retransmit=self.retransmit,
                                  faults_injected=count)


# ----------------------------------------------------------------------
# The --faults grammar.

_COMPUTER = re.compile(r"^[cC]?(\d+)$")


def _computer(token: str) -> int:
    m = _COMPUTER.match(token)
    if m is None:
        raise FaultSpecError(f"bad computer index {token!r}")
    return int(m.group(1))


def _number(token: str, what: str = "number") -> float:
    try:
        return float(token)
    except ValueError:
        raise FaultSpecError(f"bad {what} {token!r}") from None


def _integer(token: str) -> int:
    try:
        return int(token)
    except ValueError:
        raise FaultSpecError(f"bad integer {token!r}") from None


def _split_window(body: str) -> tuple[str, str]:
    if "+" not in body:
        raise FaultSpecError("needs a '+<duration>' window")
    at, _, duration = body.partition("+")
    return at, duration


def _parse_clause(clause: str, faults: list, drops: set,
                  rates: dict) -> dict:
    """Parse one clause, mutating ``faults``/``drops``/``rates`` in place.

    Returns the scalar settings (seed, loss, retransmission knobs) the
    clause established, if any.  Raised messages describe only the
    *local* defect — :func:`parse_faults` wraps them with the clause
    text and its position in the full spec string.
    """
    stochastic = False
    if ":" in clause:
        head, _, body = clause.partition(":")
    elif "~" in clause:
        head, _, body = clause.partition("~")
        stochastic = True
    else:
        raise FaultSpecError("expected '<kind>:<spec>' or '<kind>~<rate>'")
    head = head.strip().lower()
    if not stochastic and "~" in head:
        raise FaultSpecError("expected '<kind>:<spec>' or '<kind>~<rate>'")

    if head == "seed":
        return {"seed": _integer(body)}
    if head == "loss":
        return {"p_loss": _number(body, "loss probability")}
    if head == "retransmits":
        return {"retransmits": _integer(body)}
    if head == "backoff":
        return {"backoff": _number(body, "backoff")}
    if head == "maxbackoff":
        return {"max_backoff": _number(body, "backoff cap")}
    if head == "drop":
        parts = body.split(":")
        if len(parts) != 3:
            raise FaultSpecError("must be drop:<kind>:<c>:<attempt>")
        kind = parts[0].strip().lower()
        drops.add((kind, _computer(parts[1]), _integer(parts[2])))
    elif head == "crash":
        if stochastic:
            rates["crash_rate"] = _number(body, "rate")
        else:
            if "@" not in body:
                raise FaultSpecError("must be crash:<c>@<t>")
            c, _, t = body.partition("@")
            faults.append(PermanentCrash(_computer(c), _number(t, "time")))
    elif head == "outage":
        if stochastic:
            rate, duration = _split_window(body)
            rates["outage_rate"] = _number(rate, "rate")
            rates["outage_duration"] = _number(duration, "duration")
        else:
            if "@" not in body:
                raise FaultSpecError("must be outage:<c>@<t>+<d>")
            c, _, window = body.partition("@")
            at, duration = _split_window(window)
            faults.append(TransientOutage(
                _computer(c), _number(at, "time"),
                _number(duration, "duration")))
    elif head == "slow":
        if stochastic:
            rate, window = _split_window(body)
            if "x" not in window:
                raise FaultSpecError("needs 'x<factor>'")
            duration, _, factor = window.partition("x")
            rates["slow_rate"] = _number(rate, "rate")
            rates["slow_duration"] = _number(duration, "duration")
            rates["slow_factor"] = _number(factor, "factor")
        else:
            if "@" not in body:
                raise FaultSpecError("must be slow:<c>@<t>+<d>x<f>")
            c, _, window = body.partition("@")
            at, rest = _split_window(window)
            if "x" not in rest:
                raise FaultSpecError("needs 'x<factor>'")
            duration, _, factor = rest.partition("x")
            faults.append(DegradedSpeed(
                _computer(c), _number(at, "time"),
                _number(duration, "duration"), _number(factor, "factor")))
    elif head == "speeds":
        # First-class time-varying ρ (any positive factor), no '~' form:
        # a declared speed trajectory is not a stochastic fault.
        if stochastic:
            raise FaultSpecError("speeds has no stochastic '~' form; "
                                 "must be speeds:<c>@<t>+<d>x<f>")
        if "@" not in body:
            raise FaultSpecError("must be speeds:<c>@<t>+<d>x<f>")
        c, _, window = body.partition("@")
        at, rest = _split_window(window)
        if "x" not in rest:
            raise FaultSpecError("needs 'x<factor>'")
        duration, _, factor = rest.partition("x")
        faults.append(SpeedPhase(
            _computer(c), _number(at, "time"),
            _number(duration, "duration"), _number(factor, "factor")))
    else:
        raise FaultSpecError(f"unknown fault kind {head!r}")
    return {}


def parse_faults(text: str) -> FaultScenario:
    """Parse the compact ``--faults`` grammar (see the module docstring).

    Raises
    ------
    FaultSpecError
        On any malformed clause — the message names the clause and its
        position (index and character offset) in the spec string; the
        CLI maps this (with the rest of the fault/recovery family) to
        exit code 3.
    """
    faults: list[WorkerFault] = []
    drops: set[tuple[str, int, int]] = set()
    p_loss = 0.0
    seed = 0
    retransmits: int | None = None
    backoff: float | None = None
    max_backoff: float | None = None
    rates: dict[str, float] = {}

    # Split on [,;] but keep each clause's character offset so parse
    # errors can point back into the original string.
    clauses = [(m.group().strip(),
                m.start() + len(m.group()) - len(m.group().lstrip()))
               for m in re.finditer(r"[^,;]+", text) if m.group().strip()]
    if not clauses:
        raise FaultSpecError(f"empty fault specification {text!r}")
    for position, (clause, offset) in enumerate(clauses, start=1):
        try:
            settings = _parse_clause(clause, faults, drops, rates)
        except FaultSpecError as exc:
            raise FaultSpecError(
                f"bad fault clause {clause!r} (clause {position} of "
                f"{len(clauses)}, at char {offset} of the spec): {exc}"
            ) from None
        seed = settings.get("seed", seed)
        p_loss = settings.get("p_loss", p_loss)
        retransmits = settings.get("retransmits", retransmits)
        backoff = settings.get("backoff", backoff)
        max_backoff = settings.get("max_backoff", max_backoff)

    channel = None
    if p_loss > 0.0 or drops:
        try:
            channel = ChannelLoss(p_loss=p_loss, seed=seed,
                                  drops=frozenset(drops))
        except FaultInjectionError as exc:
            raise FaultSpecError(str(exc)) from exc
    retransmit_kwargs = {}
    if retransmits is not None:
        retransmit_kwargs["max_retransmits"] = retransmits
    if backoff is not None:
        retransmit_kwargs["backoff"] = backoff
    if max_backoff is not None:
        retransmit_kwargs["max_backoff"] = max_backoff
    try:
        return FaultScenario(faults=tuple(faults), channel=channel,
                             retransmit=RetransmitPolicy(**retransmit_kwargs),
                             seed=seed, **rates)
    except FaultInjectionError as exc:
        raise FaultSpecError(str(exc)) from exc
