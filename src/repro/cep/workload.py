"""Task-based workload accounting (paper §1.2's applications).

The CEP abstracts workloads into "work units"; real deployments (the
paper cites data smoothing, pattern matching, ray tracing, Monte-Carlo
simulation, chromosome mapping) think in *tasks* with a wall-clock time
per task.  :class:`Workload` carries that bookkeeping and converts both
ways:

* a task count becomes a work-unit total (one unit ≡ one task, the
  model's "uniform workload" convention);
* dimensionless lifespans/rates convert to wall-clock via the task
  granularity, with :meth:`repro.core.params.ModelParams.with_task_granularity`
  handling the parameter side of the same change of units.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cep.problem import ClusterExploitationProblem, ClusterRentalProblem
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["Workload"]


@dataclass(frozen=True, slots=True)
class Workload:
    """A bag of equal-size independent tasks.

    Parameters
    ----------
    n_tasks:
        Number of tasks (= work units).
    seconds_per_task:
        Wall-clock compute time of one task on the reference (slowest,
        ρ = 1) computer.
    name:
        Optional label for reports.
    """

    n_tasks: float
    seconds_per_task: float = 1.0
    name: str = "workload"

    def __post_init__(self) -> None:
        if self.n_tasks <= 0:
            raise InvalidParameterError(f"n_tasks must be positive, got {self.n_tasks!r}")
        if self.seconds_per_task <= 0:
            raise InvalidParameterError(
                f"seconds_per_task must be positive, got {self.seconds_per_task!r}")

    @property
    def work_units(self) -> float:
        """One work unit per task (the model's uniform-workload convention)."""
        return float(self.n_tasks)

    def to_wall_clock(self, lifespan_units: float) -> float:
        """Convert a dimensionless lifespan to seconds."""
        return lifespan_units * self.seconds_per_task

    def from_wall_clock(self, seconds: float) -> float:
        """Convert seconds to dimensionless lifespan units."""
        if seconds <= 0:
            raise InvalidParameterError(f"seconds must be positive, got {seconds!r}")
        return seconds / self.seconds_per_task

    def rental_problem(self, profile: Profile,
                       params: ModelParams) -> ClusterRentalProblem:
        """The CRP instance 'finish this workload as fast as possible'.

        ``params`` must already be expressed against this workload's
        granularity (see
        :meth:`~repro.core.params.ModelParams.with_task_granularity`).
        """
        return ClusterRentalProblem(profile=profile, params=params,
                                    workload=self.work_units)

    def exploitation_problem(self, profile: Profile, params: ModelParams,
                             wall_clock_seconds: float) -> ClusterExploitationProblem:
        """The CEP instance 'do as much of this as possible in T seconds'."""
        return ClusterExploitationProblem(
            profile=profile, params=params,
            lifespan=self.from_wall_clock(wall_clock_seconds))

    def completion_seconds(self, profile: Profile, params: ModelParams) -> float:
        """Wall-clock seconds the optimal schedule needs for the whole bag."""
        lifespan_units = self.rental_problem(profile, params).optimal_lifespan
        return self.to_wall_clock(lifespan_units)
