"""The CEP and its dual, the Cluster-Rental Problem (paper footnote 3)."""

from repro.cep.problem import ClusterExploitationProblem, ClusterRentalProblem
from repro.cep.rental import min_prefix_for_deadline, rent_cluster, scale_allocation
from repro.cep.workload import Workload

__all__ = [
    "ClusterExploitationProblem",
    "ClusterRentalProblem",
    "rent_cluster",
    "scale_allocation",
    "min_prefix_for_deadline",
    "Workload",
]
