"""Solving the Cluster-Rental Problem and converting CEP ⇄ CRP solutions.

Footnote 3 of the paper: an optimal CEP solution converts efficiently
into an optimal solution of its dual.  Concretely, the FIFO fluid
schedule is homogeneous of degree 1 in ``L`` — scaling every quantum by
``c`` scales both the work and the lifespan by ``c`` — so the CRP is
solved by scaling a unit-lifespan CEP schedule to the requested
workload.  :func:`rent_cluster` returns the schedule; helper functions
answer capacity-planning questions built on it (e.g. the smallest
cluster prefix that meets a deadline).
"""

from __future__ import annotations

from repro.cep.problem import ClusterRentalProblem
from repro.core.measure import work_rate
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation

__all__ = ["rent_cluster", "scale_allocation", "min_prefix_for_deadline"]


def scale_allocation(allocation: WorkAllocation, factor: float) -> WorkAllocation:
    """Scale a fluid schedule: quanta and lifespan both multiply by ``factor``."""
    if factor <= 0:
        raise InvalidParameterError(f"scale factor must be positive, got {factor!r}")
    return WorkAllocation(
        profile=allocation.profile,
        params=allocation.params,
        lifespan=allocation.lifespan * factor,
        w=allocation.w * factor,
        startup_order=allocation.startup_order,
        finishing_order=allocation.finishing_order,
        protocol_name=allocation.protocol_name,
    )


def rent_cluster(problem: ClusterRentalProblem) -> WorkAllocation:
    """Optimal CRP schedule: finish ``workload`` units as fast as possible.

    Returns a FIFO allocation whose lifespan is the CRP optimum
    ``W·(τδ + 1/X)`` and whose quanta sum to exactly the workload.
    """
    lifespan = problem.optimal_lifespan
    allocation = fifo_allocation(problem.profile, problem.params, lifespan)
    # Guard against accumulated rounding: renormalise the quanta so they
    # sum to the workload exactly.
    total = allocation.total_work
    if total <= 0:
        raise InvalidParameterError("degenerate rental: zero-work schedule")
    return scale_allocation(allocation, problem.workload / total)


def min_prefix_for_deadline(profile: Profile, params: ModelParams,
                            workload: float, deadline: float) -> int:
    """Capacity planning: how many of the cluster's fastest computers are
    needed to finish ``workload`` within ``deadline``?

    Considers prefixes of the power-ordered-by-speed cluster (fastest
    first) and returns the smallest size whose CRP optimum meets the
    deadline.

    Returns
    -------
    int
        The prefix size, or ``-1`` if even the full cluster misses the
        deadline.
    """
    if workload <= 0 or deadline <= 0:
        raise InvalidParameterError(
            f"workload and deadline must be positive, got {workload!r}, {deadline!r}")
    fastest_first = sorted(profile, key=float)
    for k in range(1, profile.n + 1):
        prefix = Profile(fastest_first[:k])
        lifespan = workload / work_rate(prefix, params)
        if lifespan <= deadline:
            return k
    return -1
