"""Problem definitions: CEP and its dual CRP (paper §1.2, footnote 3).

* **Cluster-Exploitation Problem (CEP)** — given a lifespan ``L``,
  complete as many work units as possible.
* **Cluster-Rental Problem (CRP)** — given a workload ``W``, finish in
  as few time units as possible.

Under the FIFO asymptotics the two are inverse linear maps of each
other: ``W(L) = L/(τδ + 1/X)`` and ``L(W) = W·(τδ + 1/X)``, so an
optimal solution to one converts to an optimal solution of the other by
rescaling every work quantum (footnote 3 cites the formal equivalence).
These dataclasses give the two problems first-class, documented homes
used by the examples and the rental module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.measure import work_rate
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["ClusterExploitationProblem", "ClusterRentalProblem"]


@dataclass(frozen=True)
class ClusterExploitationProblem:
    """A CEP instance: maximise work over a fixed lifespan."""

    profile: Profile
    params: ModelParams
    lifespan: float

    def __post_init__(self) -> None:
        if self.lifespan <= 0:
            raise InvalidParameterError(
                f"lifespan must be positive, got {self.lifespan!r}")

    @property
    def optimal_work(self) -> float:
        """Theorem 2's optimum: ``W(L;P) = L/(τδ + 1/X(P))``."""
        return self.lifespan * work_rate(self.profile, self.params)

    def dual(self) -> "ClusterRentalProblem":
        """The CRP whose optimal lifespan is this CEP's lifespan."""
        return ClusterRentalProblem(profile=self.profile, params=self.params,
                                    workload=self.optimal_work)


@dataclass(frozen=True)
class ClusterRentalProblem:
    """A CRP instance: minimise the lifespan for a fixed workload."""

    profile: Profile
    params: ModelParams
    workload: float

    def __post_init__(self) -> None:
        if self.workload <= 0:
            raise InvalidParameterError(
                f"workload must be positive, got {self.workload!r}")

    @property
    def optimal_lifespan(self) -> float:
        """``L(W;P) = W·(τδ + 1/X(P))`` — the inverse of Theorem 2's map."""
        return self.workload / work_rate(self.profile, self.params)

    def dual(self) -> ClusterExploitationProblem:
        """The CEP whose optimal work is this CRP's workload."""
        return ClusterExploitationProblem(profile=self.profile, params=self.params,
                                          lifespan=self.optimal_lifespan)
