"""The stream's line-delimited JSON event schema, parser, and sources.

Every event is one JSON object per line with a ``type`` and an event
``time`` (the instant the thing *happened* in the cluster's clock, not
the instant the line arrived — the stream layer does event-time
windowing).  Five types:

``task_completed``
    The server learned that ``worker`` finished a quantum of ``work``
    units at ``time``.  Optional milestone fields — ``sent``,
    ``arrived``, ``completed``, ``result_started`` — carry the
    quantum's closed-form timeline (send-prep start, bench arrival,
    busy end, result-transit start); the calibrator fits (τ, π, δ, ρ)
    from whichever milestone pairs are present.
``worker_joined`` / ``worker_left``
    Membership changes; ``worker_joined`` may declare a ``rho``.
``speed_observed``
    A direct observation of ``worker``'s current ρ (an external probe).
``topology``
    A full snapshot: ``workers`` maps worker id → declared ρ and
    replaces the tracked worker set wholesale.

Sources are plain iterators of :class:`StreamEvent`: a file, stdin, or
a replay of the events a previous ``stream`` run persisted to the
PR-6 run-history store.  No Kafka, no sockets — stdlib only.

Parse errors raise :class:`~repro.errors.StreamEventError` naming the
line number *and* the character offset of the defect inside the line —
the same positional contract ``parse_faults`` gives fault clauses —
and the CLI maps them to exit code 2.
"""

from __future__ import annotations

import json
import math
import sys
from dataclasses import dataclass
from typing import IO, Any, Iterable, Iterator

from repro.errors import StreamError, StreamEventError

__all__ = ["StreamEvent", "EVENT_TYPES", "event_from_dict", "event_to_dict",
           "event_to_line", "parse_event_line", "read_events", "file_source",
           "stdin_source", "store_source", "canonical_key"]

#: Recognised event types, in the canonical tie-break order used when
#: sorting simultaneous events (membership before observations before
#: completions, so a window replays identically however it was shuffled).
EVENT_TYPES = ("topology", "worker_joined", "worker_left",
               "speed_observed", "task_completed")

_TYPE_ORDER = {name: i for i, name in enumerate(EVENT_TYPES)}


@dataclass(frozen=True)
class StreamEvent:
    """One validated stream event (see the module docstring)."""

    time: float
    type: str
    worker: int | None = None
    rho: float | None = None
    work: float | None = None
    sent: float | None = None
    arrived: float | None = None
    completed: float | None = None
    result_started: float | None = None
    #: ``topology`` only: the full worker set as (id, ρ) pairs, id-sorted.
    workers: tuple[tuple[int, float], ...] = ()


def _finite(value: Any, field: str, *, minimum: float | None = None,
            strict: bool = False) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise StreamEventError(f"field {field!r} must be a number, "
                               f"got {value!r}", field=field)
    value = float(value)
    if not math.isfinite(value):
        raise StreamEventError(f"field {field!r} must be finite, "
                               f"got {value!r}", field=field)
    if minimum is not None:
        if strict and value <= minimum:
            raise StreamEventError(f"field {field!r} must be > {minimum:g}, "
                                   f"got {value!r}", field=field)
        if not strict and value < minimum:
            raise StreamEventError(f"field {field!r} must be >= {minimum:g}, "
                                   f"got {value!r}", field=field)
    return value


def _worker_id(value: Any, field: str = "worker") -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise StreamEventError(f"field {field!r} must be an integer worker "
                               f"id, got {value!r}", field=field)
    if value < 0:
        raise StreamEventError(f"field {field!r} must be >= 0, "
                               f"got {value!r}", field=field)
    return value


def event_from_dict(obj: Any) -> StreamEvent:
    """Validate one decoded JSON object into a :class:`StreamEvent`.

    Raises :class:`StreamEventError` (with the offending field attached)
    on any defect; :func:`parse_event_line` wraps those with the line
    number and character offset.
    """
    if not isinstance(obj, dict):
        raise StreamEventError(
            f"event must be a JSON object, got {type(obj).__name__}")
    kind = obj.get("type")
    if kind not in _TYPE_ORDER:
        raise StreamEventError(
            f"unknown event type {kind!r} (known: {', '.join(EVENT_TYPES)})",
            field="type")
    if "time" not in obj:
        raise StreamEventError("event is missing the 'time' field",
                               field="type")
    time = _finite(obj["time"], "time")

    worker = rho = work = None
    sent = arrived = completed = result_started = None
    workers: tuple[tuple[int, float], ...] = ()

    if kind == "topology":
        table = obj.get("workers")
        if not isinstance(table, dict):
            raise StreamEventError(
                "topology event needs a 'workers' object mapping worker "
                "id -> rho", field="workers")
        pairs = []
        for key, value in table.items():
            try:
                wid = int(key)
            except (TypeError, ValueError):
                raise StreamEventError(
                    f"bad worker id {key!r} in 'workers'",
                    field="workers") from None
            pairs.append((_worker_id(wid, "workers"),
                          _finite(value, "workers", minimum=0.0,
                                  strict=True)))
        workers = tuple(sorted(pairs))
        if len({wid for wid, _ in workers}) != len(workers):
            raise StreamEventError("duplicate worker id in 'workers'",
                                   field="workers")
    else:
        worker = _worker_id(obj.get("worker"))
        if kind in ("worker_joined", "speed_observed"):
            raw = obj.get("rho", 1.0 if kind == "worker_joined" else None)
            if raw is None:
                raise StreamEventError(
                    "speed_observed event needs a 'rho' field", field="rho")
            rho = _finite(raw, "rho", minimum=0.0, strict=True)
        if kind == "task_completed":
            if "work" not in obj:
                raise StreamEventError(
                    "task_completed event needs a 'work' field", field="work")
            work = _finite(obj["work"], "work", minimum=0.0, strict=True)
            for field in ("sent", "arrived", "completed", "result_started"):
                if obj.get(field) is not None:
                    value = _finite(obj[field], field)
                    if field == "sent":
                        sent = value
                    elif field == "arrived":
                        arrived = value
                    elif field == "completed":
                        completed = value
                    else:
                        result_started = value
            # Milestones must run forward; a reversed pair would make the
            # calibrator fit a negative duration.
            chain = [(name, value) for name, value in
                     (("sent", sent), ("arrived", arrived),
                      ("completed", completed),
                      ("result_started", result_started), ("time", time))
                     if value is not None]
            for (a_name, a), (b_name, b) in zip(chain, chain[1:]):
                if b < a:
                    raise StreamEventError(
                        f"milestone {b_name!r} ({b!r}) precedes "
                        f"{a_name!r} ({a!r})", field=b_name)
    return StreamEvent(time=time, type=kind, worker=worker, rho=rho,
                       work=work, sent=sent, arrived=arrived,
                       completed=completed, result_started=result_started,
                       workers=workers)


def event_to_dict(event: StreamEvent) -> dict[str, Any]:
    """The canonical JSON-able form (None fields omitted, ids as strings)."""
    out: dict[str, Any] = {"type": event.type, "time": event.time}
    for field in ("worker", "rho", "work", "sent", "arrived", "completed",
                  "result_started"):
        value = getattr(event, field)
        if value is not None:
            out[field] = value
    if event.type == "topology":
        out["workers"] = {str(wid): rho for wid, rho in event.workers}
    return out


def event_to_line(event: StreamEvent) -> str:
    """One canonical JSONL line (sorted keys, compact separators)."""
    return json.dumps(event_to_dict(event), sort_keys=True,
                      separators=(",", ":"))


def canonical_key(event: StreamEvent) -> tuple:
    """Total order on events: time, then type rank, then content.

    Sorting a window's events by this key before applying them makes
    window summaries independent of within-window arrival order — the
    determinism property the hypothesis suite pins.
    """
    return (event.time, _TYPE_ORDER[event.type],
            -1 if event.worker is None else event.worker,
            event_to_line(event))


def parse_event_line(line: str, *, line_number: int = 1) -> StreamEvent:
    """Parse one JSONL line into a validated event.

    Raises :class:`StreamEventError` whose message names the line number
    and the character offset of the defect within the line.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise StreamEventError(
            f"bad stream event (line {line_number}, at char {exc.pos} of "
            f"the line): invalid JSON: {exc.msg}") from None
    try:
        return event_from_dict(obj)
    except StreamEventError as exc:
        offset = 0
        if exc.field is not None:
            offset = max(0, line.find(f'"{exc.field}"'))
        raise StreamEventError(
            f"bad stream event (line {line_number}, at char {offset} of "
            f"the line): {exc}") from None


def read_events(lines: Iterable[str], *,
                start_line: int = 1) -> Iterator[StreamEvent]:
    """Parse an iterable of JSONL lines, skipping blank lines.

    Line numbers in error messages count from ``start_line`` and include
    the skipped blanks, so they match the source file.
    """
    for line_number, line in enumerate(lines, start=start_line):
        if not line.strip():
            continue
        yield parse_event_line(line, line_number=line_number)


def file_source(path: str) -> Iterator[StreamEvent]:
    """Events from a JSONL file (one event per line).

    The file is opened eagerly so a missing path raises here, at
    acquisition time, not at first iteration deep inside a processor.
    """
    fh = open(path, "r", encoding="utf-8")

    def _events() -> Iterator[StreamEvent]:
        with fh:
            yield from read_events(fh)

    return _events()


def stdin_source(stream: IO[str] | None = None) -> Iterator[StreamEvent]:
    """Events from stdin (or any text stream), line by line."""
    yield from read_events(stream if stream is not None else sys.stdin)


def store_source(store: Any, run_id: str | None = None) -> Iterator[StreamEvent]:
    """Replay the events a previous ``stream`` run persisted to the store.

    ``store`` is a :class:`repro.obs.store.RunStore`; ``run_id`` may be a
    prefix, or None for the most recent ``stream`` run.  Raises
    :class:`StreamError` when no matching run recorded events — eagerly,
    so an unknown run fails at acquisition time, not at first iteration.
    """
    run = (store.get_run(run_id) if run_id is not None
           else store.latest(kind="stream"))
    if run is None:
        raise StreamError(
            f"no stored stream run matching {run_id!r}" if run_id
            else "no stream run in the run-history store")
    extra = run.get("extra") or {}
    events = extra.get("events")
    if not events:
        note = (" (its event log was truncated at persistence time)"
                if extra.get("events_truncated") else "")
        raise StreamError(
            f"stored run {run['run_id'][:12]} has no replayable events"
            + note)

    def _events() -> Iterator[StreamEvent]:
        for index, obj in enumerate(events):
            try:
                yield event_from_dict(obj)
            except StreamEventError as exc:
                raise StreamEventError(
                    f"bad stored event {index} of run {run['run_id'][:12]}: "
                    f"{exc}") from None

    return _events()
