"""Online calibration of (τ, π, δ) and per-worker ρ from completions.

The closed-form timeline of :mod:`repro.simulation.fastpath` makes every
``task_completed`` milestone pair a *linear* observation of one model
quantity (durations through the origin in the quantum size ``w``):

====================================  =================================
milestone pair                        model duration
====================================  =================================
``sent → arrived``                    ``A·w``  with ``A = π + τ``
``arrived → completed``               ``B·ρᵢ·w``  with ``B = 1+(1+δ)π``
``result_started → time``             ``τδ·w``
====================================  =================================

So the fit is three weighted least-squares slopes through the origin —
``Â``, ``τδ̂``, and one busy slope ``B·ρᵢ`` per worker — maintained as
running sums with **exponential forgetting** (each closed window decays
the sums by a factor, so the model tracks drift instead of averaging it
away).  ``B`` and the ρ's are only observable as products, so the fit
anchors the factorisation on the cluster's *declared* speeds: the
worker whose busy slope sits closest to its declared ρ is assumed
undrifted, giving ``B̂ = min_i slopeᵢ/ρᵢ^decl`` (a drifted-slower worker
only ever *raises* its ratio).  With ``(Â, B̂, τδ̂)`` in hand the three
architectural parameters follow in closed form: substituting
``τ = Â − π`` and ``π = (B̂−1)/(1+δ)`` into ``τδ = τδ̂`` leaves one
quadratic in δ,

.. math::

    Â·δ² + (Â − (B̂−1) − τδ̂)·δ − τδ̂ = 0,

whose unique nonnegative root recovers δ exactly on noise-free traces
(the roots' product is ``−τδ̂/Â ≤ 0``).

Accuracy is scored with a **MAPE comparator**: before a window's
observations are folded in, the calibrator predicts each of its
milestone durations from the *previous* fit (honest one-step-ahead
prediction) and from the operator's initial, uncalibrated model; the
two mean-absolute-percentage errors go into every window record and
the ``stream_calibration_mape`` gauges.

The per-window ρ̂ history doubles as drift detection: workers whose
fitted ρ strays from the declared value yield piecewise-speed
:class:`~repro.faults.models.FaultTimeline` objects — rendered as
``speeds:`` clauses of the scenario grammar, so an observed drift can
be replayed through the fault-aware simulator verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import ModelParams
from repro.errors import StreamError
from repro.faults.models import FaultTimeline
from repro.stream.windows import Window

__all__ = ["Calibrator", "CalibrationSnapshot"]

#: Smallest τ the fit will report — ModelParams requires τ > 0.
_MIN_TAU = 1e-15


@dataclass(frozen=True)
class CalibrationSnapshot:
    """One window's fit: estimates plus the one-step-ahead scores."""

    window: int
    start: float
    end: float
    observations: int
    #: One-step-ahead MAPE of the *previous* fit on this window (None
    #: when the window carried no milestone observations).
    mape: float | None
    #: Same observations scored by the initial, uncalibrated model.
    baseline_mape: float | None
    tau: float
    pi: float
    delta: float
    #: Fitted ρ per worker (only workers with busy observations so far).
    rho: dict[int, float]
    #: Declared ρ per worker at window close (the drift reference).
    declared: dict[int, float]

    def to_dict(self) -> dict:
        return {"window": self.window, "start": self.start, "end": self.end,
                "observations": self.observations, "mape": self.mape,
                "baseline_mape": self.baseline_mape, "tau": self.tau,
                "pi": self.pi, "delta": self.delta,
                "rho": {str(k): v for k, v in sorted(self.rho.items())},
                "declared": {str(k): v
                             for k, v in sorted(self.declared.items())}}


class Calibrator:
    """Fit (τ, π, δ) globally and ρ per worker, online, with forgetting.

    Parameters
    ----------
    params:
        The operator's initial model — the fit's fallback for anything
        not yet observed, and the "uncalibrated" side of the MAPE
        comparator.
    forget:
        Per-window retention factor in (0, 1]: each closed window
        multiplies every least-squares accumulator by this before the
        new observations are added.  1 never forgets (pure averaging);
        smaller values track drift faster at the cost of noise.
    """

    def __init__(self, params: ModelParams, *, forget: float = 0.35) -> None:
        if not (0.0 < forget <= 1.0):
            raise StreamError(
                f"forget factor must lie in (0, 1], got {forget!r}")
        self.initial = params
        self.forget = float(forget)
        self._params = params
        # Weighted least-squares sums for d = slope·w through the origin:
        # slope = Σ(w·d) / Σ(w²), decayed per window.
        self._a_num = 0.0
        self._a_den = 0.0
        self._td_num = 0.0
        self._td_den = 0.0
        self._busy: dict[int, list[float]] = {}   # worker -> [num, den]
        self._rho: dict[int, float] = {}
        self.history: list[CalibrationSnapshot] = []

    # -- current fit ---------------------------------------------------
    @property
    def params(self) -> ModelParams:
        """The current parameter estimate (initial until data arrives)."""
        return self._params

    @property
    def rho(self) -> dict[int, float]:
        """Fitted ρ per worker (empty until busy milestones arrive)."""
        return dict(self._rho)

    def rho_for(self, worker: int, declared: float) -> float:
        return self._rho.get(worker, declared)

    # -- the per-window cycle ------------------------------------------
    @staticmethod
    def _observations(window: Window) -> list[tuple[str, int, float, float]]:
        """``(kind, worker, w, duration)`` rows from milestone pairs."""
        rows: list[tuple[str, int, float, float]] = []
        for event in window.events:
            if event.type != "task_completed" or not event.work:
                continue
            w = event.work
            if event.sent is not None and event.arrived is not None:
                rows.append(("send", event.worker, w,
                             event.arrived - event.sent))
            if event.arrived is not None and event.completed is not None:
                rows.append(("busy", event.worker, w,
                             event.completed - event.arrived))
            if event.result_started is not None:
                rows.append(("result", event.worker, w,
                             event.time - event.result_started))
        return rows

    def _predict(self, kind: str, worker: int, w: float, *,
                 params: ModelParams, rho: dict[int, float],
                 declared: dict[int, float]) -> float:
        if kind == "send":
            return params.A * w
        if kind == "result":
            return params.tau_delta * w
        r = rho.get(worker, declared.get(worker, 1.0))
        return params.B * r * w

    def _mape(self, rows: list[tuple[str, int, float, float]], *,
              params: ModelParams, rho: dict[int, float],
              declared: dict[int, float]) -> float | None:
        errors = []
        for kind, worker, w, observed in rows:
            if observed <= 0.0:
                continue
            predicted = self._predict(kind, worker, w, params=params,
                                      rho=rho, declared=declared)
            errors.append(abs(predicted - observed) / observed)
        if not errors:
            return None
        return sum(errors) / len(errors)

    def observe_window(self, window: Window,
                       declared: dict[int, float]) -> CalibrationSnapshot:
        """Score the window against the previous fit, then refit.

        ``declared`` is the cluster's declared ρ per worker at window
        close (the :class:`~repro.stream.windows.ClusterState` view) —
        the anchor that lets the fit split ``B`` from the ρ's, and the
        reference drift is measured against.
        """
        rows = self._observations(window)
        mape = self._mape(rows, params=self._params, rho=self._rho,
                          declared=declared)
        baseline = self._mape(rows, params=self.initial, rho={},
                              declared=declared)

        # Exponential forgetting: decay first, then fold the window in.
        # Decaying num and den equally leaves a quiet worker's slope
        # unchanged — only *new evidence* moves an estimate.
        f = self.forget
        self._a_num *= f
        self._a_den *= f
        self._td_num *= f
        self._td_den *= f
        for cell in self._busy.values():
            cell[0] *= f
            cell[1] *= f
        for kind, worker, w, observed in rows:
            if observed < 0.0:
                continue
            if kind == "send":
                self._a_num += w * observed
                self._a_den += w * w
            elif kind == "result":
                self._td_num += w * observed
                self._td_den += w * w
            else:
                cell = self._busy.setdefault(worker, [0.0, 0.0])
                cell[0] += w * observed
                cell[1] += w * w

        self._refit(declared)
        snapshot = CalibrationSnapshot(
            window=window.index, start=window.start, end=window.end,
            observations=len(rows), mape=mape, baseline_mape=baseline,
            tau=self._params.tau, pi=self._params.pi,
            delta=self._params.delta, rho=dict(self._rho),
            declared=dict(declared))
        self.history.append(snapshot)
        return snapshot

    def _refit(self, declared: dict[int, float]) -> None:
        a_hat = (self._a_num / self._a_den if self._a_den > 0.0
                 else self.initial.A)
        td_hat = (self._td_num / self._td_den if self._td_den > 0.0
                  else self.initial.tau_delta)
        slopes = {worker: cell[0] / cell[1]
                  for worker, cell in self._busy.items()
                  if cell[1] > 0.0 and cell[0] > 0.0}
        ratios = [slope / declared[worker]
                  for worker, slope in slopes.items()
                  if declared.get(worker, 0.0) > 0.0]
        if ratios:
            b_hat = max(1.0, min(ratios))
        else:
            b_hat = self.initial.B
        self._rho = {worker: slope / b_hat
                     for worker, slope in sorted(slopes.items())}

        # Solve A = π+τ, τδ = td, B = 1+(1+δ)π for (τ, π, δ): one
        # quadratic in δ (see the module docstring), then back-substitute.
        if a_hat > 0.0:
            b = a_hat - (b_hat - 1.0) - td_hat
            disc = b * b + 4.0 * a_hat * td_hat
            delta = (-b + math.sqrt(disc)) / (2.0 * a_hat)
            delta = min(1.0, max(0.0, delta))
        else:
            delta = self.initial.delta
        pi = max(0.0, (b_hat - 1.0) / (1.0 + delta))
        tau = max(a_hat - pi, _MIN_TAU)
        self._params = ModelParams(tau=tau, pi=pi, delta=delta)

    # -- drift surfacing (satellite: FaultTimeline promotion) ----------
    def drift_factors(self, *, threshold: float = 0.1
                      ) -> dict[int, list[tuple[float, float, float]]]:
        """Per worker: ``(start, end, factor)`` windows where the fitted
        ρ strayed from the declared ρ by more than ``threshold``
        (relative).  ``factor > 1`` is a slowdown, ``< 1`` a speedup."""
        out: dict[int, list[tuple[float, float, float]]] = {}
        for snap in self.history:
            for worker, fitted in snap.rho.items():
                base = snap.declared.get(worker)
                if not base or base <= 0.0:
                    continue
                factor = fitted / base
                if abs(factor - 1.0) > threshold:
                    out.setdefault(worker, []).append(
                        (snap.start, snap.end, factor))
        return out

    def speed_timelines(self, *, threshold: float = 0.1
                        ) -> dict[int, FaultTimeline]:
        """One piecewise-speed :class:`FaultTimeline` per drifting worker.

        Adjacent drifted windows whose factors agree within
        ``threshold`` merge into one phase (carrying the run's final,
        most-converged factor).
        """
        timelines: dict[int, FaultTimeline] = {}
        for worker, spans in self.drift_factors(threshold=threshold).items():
            phases: list[tuple[float, float, float]] = []
            for start, end, factor in spans:
                if phases:
                    ps, pe, pf = phases[-1]
                    if (math.isclose(pe, start, rel_tol=1e-9, abs_tol=1e-9)
                            and abs(factor - pf) <= threshold * pf):
                        phases[-1] = (ps, end, factor)
                        continue
                phases.append((start, end, factor))
            timelines[worker] = FaultTimeline(slowdowns=phases)
        return timelines

    def speed_clauses(self, *, threshold: float = 0.1) -> list[str]:
        """The drift timelines as ``speeds:`` clauses of the scenario
        grammar — ready to paste into ``--faults`` and replay."""
        clauses = []
        for worker, timeline in sorted(
                self.speed_timelines(threshold=threshold).items()):
            for start, end, factor in timeline.slowdowns:
                clauses.append(f"speeds:{worker}@{start:g}+{end - start:g}"
                               f"x{factor:.6g}")
        return clauses
