"""The streaming digital twin: windows → re-evaluation → records.

:class:`StreamProcessor` is the loop the CLI and the service share.
Feed it :class:`~repro.stream.events.StreamEvent` objects; every window
the event stream closes produces one JSON-able *window record*:

* the current worker set (declared ρ and, when calibration is on, the
  fitted ρ actually used),
* the paper's measures on that set — X, the asymptotic work rate,
  HECR, the window's work production ``W`` — evaluated through the
  columnar :class:`~repro.core.batch_kernels.ProfileBatch` kernels,
* the optimal FIFO allocation (per-worker work fractions; Theorem 1
  makes FIFO the CEP optimum, so the re-planned split per window *is*
  the optimal allocation for the current cluster),
* the calibration snapshot (one-step-ahead MAPE vs the uncalibrated
  baseline, fitted τ/π/δ/ρ),
* and, in shadow mode, the same measures for an operator-supplied
  what-if profile plus the real-vs-shadow deltas.

Records are plain dicts of finite floats (NaN → None), serialised with
sorted keys — two replays of the same trace emit byte-identical JSONL,
a property the test suite and the CI smoke pin end to end.

Telemetry flows through the PR-1 metrics registry (``stream_*``
counters and gauges) and, when a run-history store is supplied, each
window's calibration snapshot is persisted live as a ``stream:window``
span record — so ``repro-hetero obs tail --follow`` can watch a stream
run from a second terminal — and the raw events are stored with the
final run row for later ``--replay``.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any, Iterable, Iterator

import numpy as np

from repro.core.batch_kernels import ProfileBatch
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import StreamError
from repro.protocols.fifo import fifo_work_fractions
from repro.stream.calibrate import Calibrator
from repro.stream.events import StreamEvent, event_to_dict
from repro.stream.windows import ClusterState, Window, WindowManager

__all__ = ["StreamProcessor", "record_to_line", "EVENT_LOG_LIMIT"]

#: Largest event log persisted for ``--replay``; longer streams store
#: no events (a truncated replay would silently diverge).
EVENT_LOG_LIMIT = 50_000


def _clean(value: float) -> float | None:
    """NaN/inf → None so records serialise as strict JSON."""
    return float(value) if math.isfinite(value) else None


def record_to_line(record: dict) -> str:
    """The canonical JSONL form of a window record (byte-stable)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _evaluate(rho: dict[int, float], params: ModelParams,
              lifespan: float) -> dict[str, Any] | None:
    """X / work rate / HECR / W / optimal FIFO split for one worker set."""
    if not rho:
        return None
    ids = sorted(rho)
    vec = np.array([rho[i] for i in ids], dtype=float)
    batch = ProfileBatch(vec[None, :], copy=False)
    x = batch.x(params)
    rate = float(batch.work_rates(params, x=x)[0])
    hecr = float(batch.hecr(params, x=x)[0])
    fractions = fifo_work_fractions(Profile(vec), params)
    return {
        "n": len(ids),
        "x": _clean(float(x[0])),
        "work_rate": _clean(rate),
        "hecr": _clean(hecr),
        "w_window": _clean(rate * lifespan),
        "allocation": {str(i): float(f) for i, f in zip(ids, fractions)},
    }


class StreamProcessor:
    """Consume events, close windows, emit records (see module docstring).

    Parameters
    ----------
    window:
        Event-time window size, in the trace's time units.
    params:
        Initial architectural model; the calibrator's starting point
        and the whole model when calibration is off.
    calibrate:
        Fit (τ, π, δ, ρ) online (default).  Off, every window is
        evaluated with ``params`` and the declared speeds only.
    what_if:
        Optional shadow profile (iterable of ρ > 0): evaluated next to
        the real cluster every window, with deltas in each record.
    forget:
        Calibrator retention factor per window (see
        :class:`~repro.stream.calibrate.Calibrator`).
    registry:
        Optional metrics registry for the ``stream_*`` series.
    store:
        Optional :class:`~repro.obs.store.RunStore`; window snapshots
        stream in live as spans, events persist for ``--replay``.
    """

    def __init__(self, window: float, *, params: ModelParams = PAPER_TABLE1,
                 calibrate: bool = True,
                 what_if: Iterable[float] | None = None,
                 forget: float = 0.35, drift_threshold: float = 0.1,
                 registry: Any = None, store: Any = None,
                 label: str = "stream") -> None:
        self.windows = WindowManager(window)
        self.state = ClusterState()
        self.params = params
        self.calibrator = (Calibrator(params, forget=forget)
                           if calibrate else None)
        self.drift_threshold = float(drift_threshold)
        self.label = label
        self._shadow: dict[int, float] | None = None
        if what_if is not None:
            vec = [float(r) for r in what_if]
            if not vec or any(not math.isfinite(r) or r <= 0.0 for r in vec):
                raise StreamError(
                    f"what-if profile must be positive finite rho values, "
                    f"got {vec!r}")
            self._shadow = dict(enumerate(vec))
        self._registry = registry
        self._store = store
        self._run_id: str | None = None
        self._started_at = time.time()
        self._event_log: list[dict] = []
        self._event_log_truncated = False
        self.last_record: dict | None = None
        self.records_emitted = 0
        if store is not None:
            self._run_id = store.record_run(
                kind="stream", label=label, status="running",
                started_at=self._started_at,
                extra={"window": self.windows.size,
                       "calibrate": calibrate,
                       "what_if": (sorted(self._shadow.values())
                                   if self._shadow else None)})

    @property
    def run_id(self) -> str | None:
        return self._run_id

    # -- ingestion -----------------------------------------------------
    def feed(self, event: StreamEvent) -> list[dict]:
        """Admit one event; returns a record per window it closed."""
        if not self._event_log_truncated:
            if len(self._event_log) < EVENT_LOG_LIMIT:
                self._event_log.append(event_to_dict(event))
            else:
                self._event_log = []
                self._event_log_truncated = True
        return [self._close(w) for w in self.windows.add(event)]

    def process(self, events: Iterable[StreamEvent]) -> Iterator[dict]:
        """Feed a whole source, yielding records as windows close."""
        for event in events:
            yield from self.feed(event)

    # -- window close --------------------------------------------------
    def _close(self, window: Window) -> dict:
        for event in window.events:
            self.state.apply(event)
        declared = self.state.workers

        snapshot = None
        params = self.params
        rho_used = dict(declared)
        if self.calibrator is not None:
            snapshot = self.calibrator.observe_window(window, declared)
            params = self.calibrator.params
            rho_used = {i: self.calibrator.rho_for(i, declared[i])
                        for i in declared}

        lifespan = self.windows.size
        real = _evaluate(rho_used, params, lifespan)
        shadow = None
        if self._shadow is not None:
            shadow = _evaluate(self._shadow, params, lifespan)
            if shadow is not None and real is not None:
                rate, s_rate = real["work_rate"], shadow["work_rate"]
                delta = (s_rate - rate if rate is not None
                         and s_rate is not None else None)
                shadow["work_rate_delta"] = delta
                shadow["work_rate_delta_pct"] = (
                    100.0 * delta / rate if delta is not None and rate
                    else None)

        by_type: dict[str, int] = {}
        for event in window.events:
            by_type[event.type] = by_type.get(event.type, 0) + 1
        record: dict[str, Any] = {
            "kind": "window",
            "window": window.index,
            "start": window.start,
            "end": window.end,
            "events": {"total": len(window.events), "late": window.late,
                       "by_type": by_type},
            "workers": {str(i): float(r)
                        for i, r in sorted(rho_used.items())},
            "declared": {str(i): float(r)
                         for i, r in sorted(declared.items())},
            "params": {"tau": params.tau, "pi": params.pi,
                       "delta": params.delta},
            "evaluation": real,
            "shadow": shadow,
            "calibration": snapshot.to_dict() if snapshot is not None
            else None,
            "cumulative": {"events": self.windows.events_total,
                           "windows": self.windows.windows_closed,
                           "late": self.windows.late_total},
        }
        self.last_record = record
        self.records_emitted += 1
        self._publish(record, params, rho_used)
        return record

    # -- surfaces ------------------------------------------------------
    def _publish(self, record: dict, params: ModelParams,
                 rho_used: dict[int, float]) -> None:
        registry = self._registry
        if registry is not None:
            registry.counter(
                "stream_windows_total", "event-time windows closed").inc()
            for kind, count in record["events"]["by_type"].items():
                registry.counter(
                    "stream_events_total", "stream events admitted, by type"
                ).inc(count, type=kind)
            if record["events"]["late"]:
                registry.counter(
                    "stream_late_events_total",
                    "late events that found their window already closed"
                ).inc(record["events"]["late"])
            registry.gauge("stream_workers",
                           "workers in the tracked cluster").set(
                len(rho_used))
            evaluation = record["evaluation"]
            if evaluation is not None:
                for key in ("x", "work_rate", "hecr"):
                    if evaluation[key] is not None:
                        registry.gauge(
                            f"stream_{key}",
                            f"per-window {key} of the tracked cluster"
                        ).set(evaluation[key])
            calibration = record["calibration"]
            if calibration is not None:
                for side, value in (("calibrated", calibration["mape"]),
                                    ("baseline",
                                     calibration["baseline_mape"])):
                    if value is not None:
                        registry.gauge(
                            "stream_calibration_mape",
                            "one-step-ahead MAPE of milestone predictions, "
                            "by model"
                        ).set(value, model=side)
                for name in ("tau", "pi", "delta"):
                    registry.gauge(
                        f"stream_param_{name}",
                        f"fitted architectural parameter {name}"
                    ).set(calibration[name])
                for worker, value in calibration["rho"].items():
                    registry.gauge(
                        "stream_rho", "fitted per-worker rho"
                    ).set(value, worker=worker)
        if self._store is not None and self._run_id is not None:
            attrs = {"window": record["window"],
                     "workers": len(rho_used),
                     "events": record["events"]["total"],
                     "late": record["events"]["late"]}
            evaluation = record["evaluation"]
            if evaluation is not None:
                attrs["work_rate"] = evaluation["work_rate"]
                attrs["x"] = evaluation["x"]
            if record["calibration"] is not None:
                attrs["calibration"] = record["calibration"]
            self._store.add_spans(self._run_id, [{
                "type": "event", "name": "stream:window",
                "ts": record["start"], "dur": self.windows.size,
                "attrs": attrs}])

    def state_view(self) -> dict[str, Any]:
        """The live snapshot behind ``GET /v1/stream/state``."""
        params = (self.calibrator.params if self.calibrator is not None
                  else self.params)
        return {
            "window_size": self.windows.size,
            "current_window": self.windows.current_index,
            "buffered_events": self.windows.buffered,
            "events_total": self.windows.events_total,
            "windows_closed": self.windows.windows_closed,
            "late_events": self.windows.late_total,
            "workers": {str(i): r
                        for i, r in self.state.workers.items()},
            "params": {"tau": params.tau, "pi": params.pi,
                       "delta": params.delta},
            "calibrating": self.calibrator is not None,
            "run_id": self._run_id,
            "last_window": (self.last_record.get("window")
                            if self.last_record else None),
        }

    # -- shutdown ------------------------------------------------------
    def finish(self) -> list[dict]:
        """Flush the trailing window and emit the stream summary record.

        Returns the final records (0–1 window records plus exactly one
        ``kind: "summary"`` record carrying cumulative history and the
        calibrator's drift findings as ``speeds:`` clauses), and
        finalises the run-history row.
        """
        records = []
        window = self.windows.flush()
        if window is not None:
            records.append(self._close(window))
        drift: dict[str, Any] | None = None
        if self.calibrator is not None:
            clauses = self.calibrator.speed_clauses(
                threshold=self.drift_threshold)
            factors = self.calibrator.drift_factors(
                threshold=self.drift_threshold)
            drift = {"clauses": clauses,
                     "workers": sorted(str(w) for w in factors)}
        params = (self.calibrator.params if self.calibrator is not None
                  else self.params)
        summary: dict[str, Any] = {
            "kind": "summary",
            "windows": self.windows.windows_closed,
            "events": self.windows.events_total,
            "late": self.windows.late_total,
            "params": {"tau": params.tau, "pi": params.pi,
                       "delta": params.delta},
            "workers": {str(i): r for i, r in self.state.workers.items()},
            "drift": drift,
        }
        records.append(summary)
        self.last_record = summary
        if self._store is not None and self._run_id is not None:
            self._store.record_run(
                run_id=self._run_id, kind="stream", label=self.label,
                status="ok", started_at=self._started_at,
                wall_seconds=time.time() - self._started_at,
                metrics=(self._registry.snapshot()
                         if self._registry is not None else None),
                extra={"window": self.windows.size,
                       "windows": self.windows.windows_closed,
                       "events_total": self.windows.events_total,
                       "late": self.windows.late_total,
                       "drift": drift,
                       "events": (None if self._event_log_truncated
                                  else self._event_log),
                       "events_truncated": self._event_log_truncated})
        return records
