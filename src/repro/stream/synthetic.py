"""Deterministic synthetic event traces for the stream layer.

:func:`synthetic_trace` builds the stream a well-behaved cluster would
emit: one ``topology`` snapshot, then per event-time window one FIFO
round sized by :func:`~repro.protocols.fifo.fifo_allocation` and timed
by the closed-form :func:`~repro.simulation.fastpath.analytic_records`
— every ``task_completed`` event carries the exact milestone fields
(``sent``, ``arrived``, ``completed``, ``result_started``) the
calibrator fits against.

Drift is first-class: from ``drift_window`` on, ``drift_worker``
computes ``drift_factor×`` slower (its effective ρ is scaled), which is
exactly the scenario the acceptance tests replay — a worker slowing 2×
mid-stream, recovered by the calibrator.  Optional multiplicative
``jitter`` perturbs the milestone durations through per-window
``SeedSequence`` children, so noisy traces are still bit-reproducible.

Runnable as a module for the CI determinism smoke and the README demo::

    python -m repro.stream.synthetic --windows 6 --profile 1,0.5,0.25 \
        --drift-worker 2 --drift-factor 2 --drift-window 3 > trace.jsonl
"""

from __future__ import annotations

import sys
from typing import Iterator

import numpy as np

from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import StreamError
from repro.protocols.fifo import fifo_allocation
from repro.simulation.fastpath import analytic_records
from repro.stream.events import StreamEvent, event_to_line

__all__ = ["synthetic_trace", "write_trace"]


def synthetic_trace(*, profile: Profile | list[float],
                    params: ModelParams = PAPER_TABLE1,
                    windows: int = 6, window: float = 10.0,
                    fill: float = 0.9,
                    drift_worker: int | None = None,
                    drift_factor: float = 1.0, drift_window: int = 0,
                    jitter: float = 0.0, seed: int = 0
                    ) -> Iterator[StreamEvent]:
    """Yield the event stream of ``windows`` FIFO rounds (see module doc).

    Parameters
    ----------
    profile:
        The cluster's declared ρ (what the ``topology`` event reports).
    windows / window:
        How many event-time windows, each this many time units wide.
    fill:
        Fraction of each window the FIFO round is planned to occupy —
        the slack keeps every completion inside its own window.
    drift_worker / drift_factor / drift_window:
        From window ``drift_window`` on, the given worker runs
        ``drift_factor×`` slower than declared (ρ scaled up).
    jitter:
        Relative stddev of multiplicative noise on every milestone
        duration (0 = the exact closed-form timeline).
    seed:
        Entropy for the jitter draws (per-window ``SeedSequence``
        children — the trace is a pure function of its arguments).
    """
    if not isinstance(profile, Profile):
        profile = Profile(profile)
    if windows < 1:
        raise StreamError(f"windows must be >= 1, got {windows}")
    if not (0.0 < fill <= 1.0):
        raise StreamError(f"fill must lie in (0, 1], got {fill!r}")
    if drift_worker is not None and not (0 <= drift_worker < profile.n):
        raise StreamError(
            f"drift_worker {drift_worker} outside the {profile.n}-worker "
            f"cluster")
    if drift_factor <= 0.0:
        raise StreamError(f"drift_factor must be > 0, got {drift_factor!r}")

    yield StreamEvent(time=0.0, type="topology",
                      workers=tuple(enumerate(profile.rho.tolist())))

    seeds = np.random.SeedSequence(seed).spawn(windows) if jitter > 0.0 \
        else [None] * windows
    for k in range(windows):
        start = k * window
        rho = profile.rho.copy()
        if (drift_worker is not None and drift_factor != 1.0
                and k >= drift_window):
            rho[drift_worker] *= drift_factor
        true_profile = Profile(rho)
        allocation = fifo_allocation(true_profile, params, window * fill)
        records = analytic_records(allocation)
        rng = (np.random.default_rng(seeds[k]) if seeds[k] is not None
               else None)
        events = []
        for c in range(true_profile.n):
            r = records[c]
            if r.work <= 0.0 or not np.isfinite(r.result_end):
                continue
            sent, arrived = r.send_prep_start, r.arrived
            completed, res_start = r.busy_end, r.result_start
            res_end = r.result_end
            if rng is not None:
                d_send = (arrived - sent) * (1.0 + jitter * rng.standard_normal())
                d_busy = (completed - arrived) * (1.0 + jitter * rng.standard_normal())
                d_res = (res_end - res_start) * (1.0 + jitter * rng.standard_normal())
                arrived = sent + max(d_send, 0.0)
                completed = arrived + max(d_busy, 0.0)
                res_start = completed
                res_end = res_start + max(d_res, 0.0)
            events.append(StreamEvent(
                time=start + res_end, type="task_completed", worker=c,
                work=float(r.work), sent=start + sent,
                arrived=start + arrived, completed=start + completed,
                result_started=start + res_start))
        events.sort(key=lambda e: (e.time, e.worker))
        yield from events


def write_trace(stream, **kwargs) -> int:
    """Write :func:`synthetic_trace` as JSONL; returns the line count."""
    count = 0
    for event in synthetic_trace(**kwargs):
        stream.write(event_to_line(event) + "\n")
        count += 1
    return count


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.stream.synthetic",
        description="emit a deterministic synthetic event trace as JSONL")
    parser.add_argument("--profile", default="1,0.5,0.25",
                        help="comma-separated declared rho values")
    parser.add_argument("--windows", type=int, default=6)
    parser.add_argument("--window", type=float, default=10.0)
    parser.add_argument("--fill", type=float, default=0.9)
    parser.add_argument("--tau", type=float, default=PAPER_TABLE1.tau)
    parser.add_argument("--pi", type=float, default=PAPER_TABLE1.pi)
    parser.add_argument("--delta", type=float, default=PAPER_TABLE1.delta)
    parser.add_argument("--drift-worker", type=int, default=None)
    parser.add_argument("--drift-factor", type=float, default=1.0)
    parser.add_argument("--drift-window", type=int, default=0)
    parser.add_argument("--jitter", type=float, default=0.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="-", metavar="PATH",
                        help="output path (default: stdout)")
    args = parser.parse_args(argv)
    try:
        rho = [float(part) for part in args.profile.split(",") if part.strip()]
    except ValueError:
        print(f"error: could not parse profile {args.profile!r}",
              file=sys.stderr)
        return 2
    kwargs = dict(profile=rho,
                  params=ModelParams(tau=args.tau, pi=args.pi,
                                     delta=args.delta),
                  windows=args.windows, window=args.window, fill=args.fill,
                  drift_worker=args.drift_worker,
                  drift_factor=args.drift_factor,
                  drift_window=args.drift_window,
                  jitter=args.jitter, seed=args.seed)
    if args.out == "-":
        write_trace(sys.stdout, **kwargs)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            count = write_trace(fh, **kwargs)
        print(f"wrote {count} events to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
