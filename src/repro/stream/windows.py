"""Event-time windowing and the tracked worker set.

:class:`WindowManager` cuts the event stream into fixed-duration
windows keyed by *event* time — the opendt sim-worker lifecycle:

* the first event creates the window its timestamp falls in;
* an event past the current window's end **closes** it (watermark by
  arrival: the stream is assumed roughly ordered, so a later-window
  event is the signal that the earlier window is complete);
* events older than the current window are *late*: they are counted,
  but a closed window is **never reopened** — its summary is final;
* cumulative history (total events, windows closed, late arrivals)
  is kept across the whole stream.

On close, a window's events are sorted by
:func:`~repro.stream.events.canonical_key`, so every consumer sees one
canonical order no matter how simultaneous events interleaved on the
wire — the property that makes window summaries bit-identical under
within-window shuffling (pinned by the hypothesis suite).

:class:`ClusterState` folds membership events (``topology``,
``worker_joined``/``worker_left``, ``speed_observed``) into the current
worker set; the per-window re-evaluation runs on whatever the set is
when the window closes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import StreamError
from repro.stream.events import StreamEvent, canonical_key

__all__ = ["Window", "WindowManager", "ClusterState"]


@dataclass(frozen=True)
class Window:
    """One closed window: ``[start, end)`` plus its canonical events."""

    index: int
    start: float
    end: float
    #: The window's events in canonical order (time, type rank, worker).
    events: tuple[StreamEvent, ...]
    #: Late arrivals observed *while this window was current* (they
    #: belonged to already-closed windows and were not admitted).
    late: int


class WindowManager:
    """Fixed-duration event-time windows with a late-close lifecycle."""

    def __init__(self, size: float, *, origin: float = 0.0) -> None:
        size = float(size)
        if not (size > 0.0) or not math.isfinite(size):
            raise StreamError(
                f"window size must be positive and finite, got {size!r}")
        if not math.isfinite(origin):
            raise StreamError(f"window origin must be finite, got {origin!r}")
        self.size = size
        self.origin = float(origin)
        self._current: int | None = None
        self._buffer: list[StreamEvent] = []
        self._late_current = 0
        #: Cumulative history, kept across the whole stream.
        self.events_total = 0
        self.windows_closed = 0
        self.late_total = 0

    # -- geometry ------------------------------------------------------
    def index_of(self, time: float) -> int:
        """The window index event time ``time`` falls in."""
        return int(math.floor((time - self.origin) / self.size))

    def bounds(self, index: int) -> tuple[float, float]:
        """``[start, end)`` of window ``index``."""
        start = self.origin + index * self.size
        return start, start + self.size

    @property
    def current_index(self) -> int | None:
        """The open window's index, or None before the first event."""
        return self._current

    @property
    def buffered(self) -> int:
        """Events waiting in the open window."""
        return len(self._buffer)

    # -- lifecycle -----------------------------------------------------
    def add(self, event: StreamEvent) -> list[Window]:
        """Admit one event; returns the windows it closed (0 or 1).

        A late event (older than the open window) closes nothing and is
        *not* admitted anywhere: closed windows stay closed.
        """
        self.events_total += 1
        index = self.index_of(event.time)
        if self._current is None:
            self._current = index
        if index < self._current:
            self.late_total += 1
            self._late_current += 1
            return []
        closed: list[Window] = []
        if index > self._current:
            closed.append(self._close())
            self._current = index
        self._buffer.append(event)
        return closed

    def _close(self) -> Window:
        assert self._current is not None
        start, end = self.bounds(self._current)
        window = Window(index=self._current, start=start, end=end,
                        events=tuple(sorted(self._buffer, key=canonical_key)),
                        late=self._late_current)
        self._buffer = []
        self._late_current = 0
        self.windows_closed += 1
        return window

    def flush(self) -> Window | None:
        """Close the trailing partial window at end of stream, if any.

        After a flush the closed window stays closed: any further event
        with a timestamp inside it counts as late.
        """
        if self._current is None or not self._buffer:
            return None
        window = self._close()
        self._current = window.index + 1
        return window


class ClusterState:
    """The worker set as the event stream describes it.

    ``topology`` replaces the set wholesale; ``worker_joined`` adds (or
    re-declares), ``worker_left`` removes, ``speed_observed`` updates a
    worker's declared ρ (observing a speed implies the worker exists).
    ``task_completed`` changes nothing — completions feed the
    calibrator, not the membership.
    """

    def __init__(self) -> None:
        self._workers: dict[int, float] = {}

    def apply(self, event: StreamEvent) -> None:
        if event.type == "topology":
            self._workers = dict(event.workers)
        elif event.type == "worker_joined":
            self._workers[event.worker] = (event.rho if event.rho is not None
                                           else 1.0)
        elif event.type == "worker_left":
            self._workers.pop(event.worker, None)
        elif event.type == "speed_observed":
            self._workers[event.worker] = event.rho

    @property
    def workers(self) -> dict[int, float]:
        """Worker id → declared ρ, id-sorted (a fresh dict)."""
        return {wid: self._workers[wid] for wid in sorted(self._workers)}

    @property
    def n(self) -> int:
        return len(self._workers)
