"""Streaming digital-twin mode: event-time windows + online calibration.

The stream layer closes the loop the paper leaves open: instead of one
fixed profile in and one optimal allocation out, it consumes a live
event stream (:mod:`repro.stream.events`), cuts it into event-time
windows (:mod:`repro.stream.windows`), re-evaluates X/W/HECR and the
optimal FIFO split on the current worker set every window, and fits
(τ, π, δ) plus per-worker ρ online from observed completion milestones
(:mod:`repro.stream.calibrate`) — with an operator-supplied what-if
profile running in shadow alongside.  See ``docs/STREAM.md``.

Surfaces: the ``repro-hetero stream`` CLI, the service's
``POST /v1/stream/events`` / ``GET /v1/stream/state`` endpoints, and
the sharded ``stream-replay`` experiment.
"""

from repro.stream.calibrate import CalibrationSnapshot, Calibrator
from repro.stream.engine import (EVENT_LOG_LIMIT, StreamProcessor,
                                 record_to_line)
from repro.stream.events import (EVENT_TYPES, StreamEvent, canonical_key,
                                 event_from_dict, event_to_dict,
                                 event_to_line, file_source,
                                 parse_event_line, read_events,
                                 stdin_source, store_source)
from repro.stream.synthetic import synthetic_trace, write_trace
from repro.stream.windows import ClusterState, Window, WindowManager

__all__ = [
    "CalibrationSnapshot", "Calibrator", "ClusterState", "EVENT_LOG_LIMIT",
    "EVENT_TYPES", "StreamEvent", "StreamProcessor", "Window",
    "WindowManager", "canonical_key", "event_from_dict", "event_to_dict",
    "event_to_line", "file_source", "parse_event_line", "read_events",
    "record_to_line", "stdin_source", "store_source", "synthetic_trace",
    "write_trace",
]
