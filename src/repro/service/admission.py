"""Admission control: token-bucket rate limiting and in-flight ceilings.

The serving layer's overload story is *shed early, shed cheaply*: a
request the server cannot afford is answered with ``429`` (rate) or
``503`` (concurrency) plus a ``Retry-After`` hint **before** any
evaluation work happens, so an overloaded server degrades into fast
rejections instead of a growing queue of timeouts.  Both mechanisms
are O(1) per decision and run on the event loop thread.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.errors import InvalidParameterError

__all__ = ["TokenBucket", "AdmissionController", "AdmissionDecision"]


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/second, ``burst`` deep.

    ``try_acquire`` either takes a token (returns 0.0) or returns the
    seconds until one will be available — which is exactly the
    ``Retry-After`` a shed response should carry.

    Examples
    --------
    >>> clock = iter([0.0, 0.0, 0.0]).__next__
    >>> bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
    >>> bucket.try_acquire()
    0.0
    >>> round(bucket.try_acquire(), 3)   # empty: next token in 1/10 s
    0.1
    """

    __slots__ = ("rate", "burst", "_tokens", "_clock", "_last")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not rate > 0 or rate != rate:
            raise InvalidParameterError(f"rate must be positive, got {rate!r}")
        if not burst >= 1:
            raise InvalidParameterError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` if available (→ 0.0), else seconds to wait."""
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        """Current token count (after refilling to now)."""
        self._refill()
        return self._tokens


class AdmissionDecision:
    """The outcome of one admission check.

    Truthiness means *admitted*.  Rejections carry the HTTP status
    (429/503), a one-word ``reason`` used as the ``svc_shed_total``
    label, and the ``retry_after`` seconds for the response header.
    """

    __slots__ = ("admitted", "status", "reason", "retry_after")

    def __init__(self, admitted: bool, status: int = 200,
                 reason: str = "", retry_after: float = 0.0) -> None:
        self.admitted = admitted
        self.status = status
        self.reason = reason
        self.retry_after = retry_after

    def __bool__(self) -> bool:
        return self.admitted

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` wants integral seconds; round up, floor 1."""
        return str(max(1, math.ceil(self.retry_after)))


_ADMITTED = AdmissionDecision(True)


class AdmissionController:
    """Combines the bucket and the in-flight ceiling into one gate.

    ``admit()`` is called once per shed-eligible request; when it
    admits, the caller **must** pair it with ``release()`` (the app
    does so in a ``finally``) or the in-flight count leaks.
    """

    def __init__(self, *, max_inflight: int, rate: float = 0.0,
                 burst: float = 64.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_inflight < 1:
            raise InvalidParameterError(
                f"max_inflight must be >= 1, got {max_inflight!r}")
        self.max_inflight = int(max_inflight)
        self.inflight = 0
        self._bucket = (TokenBucket(rate, burst, clock=clock)
                        if rate > 0 else None)

    def admit(self) -> AdmissionDecision:
        """Admit (and count) one request, or say how to shed it."""
        if self._bucket is not None:
            wait = self._bucket.try_acquire()
            if wait > 0.0:
                return AdmissionDecision(False, status=429,
                                         reason="ratelimit", retry_after=wait)
        if self.inflight >= self.max_inflight:
            # The queue is the batch window deep at most; one window is
            # an honest "try again" horizon for a loopback client.
            return AdmissionDecision(False, status=503, reason="overload",
                                     retry_after=1.0)
        self.inflight += 1
        return _ADMITTED

    def release(self) -> None:
        """Return one admitted request's in-flight slot."""
        if self.inflight <= 0:  # pragma: no cover - guarded by the app
            raise InvalidParameterError("release() without a matching admit()")
        self.inflight -= 1
