"""A blocking client for the serving layer (stdlib ``http.client``).

:class:`ServiceClient` is the supported way to talk to a running
``repro-hetero serve`` from scripts, tests, and the throughput
benchmark.  It speaks plain JSON over a persistent keep-alive
connection, raises :class:`ServiceError` for every non-2xx answer
(carrying the status, the decoded error payload, and any
``Retry-After`` hint so callers can implement backoff), and is safe to
share across threads only if each thread uses its own instance — the
underlying ``HTTPConnection`` is not thread-safe, and per-thread
clients are exactly what a load generator wants anyway.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection, HTTPException
from typing import Any, Sequence

from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """A non-2xx service answer (or a transport failure).

    Attributes
    ----------
    status:
        The HTTP status code, or 0 for transport-level failures.
    payload:
        The decoded JSON error body (``{}`` when undecodable).
    retry_after:
        Seconds suggested by the ``Retry-After`` header, 0.0 if absent —
        non-zero exactly when the server shed the request (429/503).
    """

    def __init__(self, message: str, *, status: int = 0,
                 payload: dict[str, Any] | None = None,
                 retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload or {}
        self.retry_after = retry_after

    @property
    def shed(self) -> bool:
        """True when the server refused the request under load."""
        return self.status in (429, 503)


class ServiceClient:
    """One keep-alive connection to a ``repro-hetero serve`` instance.

    Examples
    --------
    ::

        with ServiceClient("127.0.0.1", 8023) as client:
            client.x([1.0, 0.5, 0.25])["x"]
            client.allocate([1.0, 0.5], lifespan=100.0, protocol="lp")
    """

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._conn: HTTPConnection | None = None

    # -- plumbing ------------------------------------------------------
    def _connection(self) -> HTTPConnection:
        if self._conn is None:
            self._conn = HTTPConnection(self.host, self.port,
                                        timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(self, method: str, path: str,
                payload: dict[str, Any] | None = None, *,
                deadline_ms: float | None = None) -> dict[str, Any]:
        """One JSON round trip; returns the decoded 2xx body.

        Raises :class:`ServiceError` for non-2xx statuses and for
        transport failures (after dropping the connection so the next
        call reconnects cleanly).
        """
        headers = {"Content-Type": "application/json"}
        if deadline_ms is not None:
            headers["X-Repro-Deadline-Ms"] = str(float(deadline_ms))
        body = (json.dumps(payload, separators=(",", ":")).encode("utf-8")
                if payload is not None else None)
        try:
            conn = self._connection()
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        except (OSError, HTTPException) as exc:
            self.close()
            raise ServiceError(
                f"transport failure talking to {self.host}:{self.port}: "
                f"{type(exc).__name__}: {exc}") from None
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            decoded = {"raw": raw.decode("utf-8", "replace")}
        if not 200 <= response.status < 300:
            retry_after = 0.0
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    pass
            message = (decoded.get("error")
                       if isinstance(decoded, dict) else None)
            raise ServiceError(
                f"{method} {path} -> {response.status}: "
                f"{message or raw[:200]!r}",
                status=response.status,
                payload=decoded if isinstance(decoded, dict) else {},
                retry_after=retry_after)
        return decoded

    # -- endpoint helpers ----------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics_text(self) -> str:
        """The raw Prometheus exposition (not JSON)."""
        try:
            conn = self._connection()
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            raw = response.read()
        except (OSError, HTTPException) as exc:
            self.close()
            raise ServiceError(
                f"transport failure talking to {self.host}:{self.port}: "
                f"{type(exc).__name__}: {exc}") from None
        if response.status != 200:
            raise ServiceError(f"GET /metrics -> {response.status}",
                               status=response.status)
        return raw.decode("utf-8")

    def experiments(self) -> list[dict[str, Any]]:
        return self.request("GET", "/v1/experiments")["experiments"]

    def run_experiment(self, experiment_id: str,
                       **kwargs: Any) -> dict[str, Any]:
        payload = {"kwargs": kwargs} if kwargs else None
        return self.request("POST", f"/v1/experiments/{experiment_id}",
                            payload)

    @staticmethod
    def _eval_payload(profile: Sequence[float],
                      params: dict[str, float] | None) -> dict[str, Any]:
        payload: dict[str, Any] = {"profile": list(profile)}
        if params is not None:
            payload["params"] = dict(params)
        return payload

    def x(self, profile: Sequence[float], *,
          params: dict[str, float] | None = None,
          deadline_ms: float | None = None) -> dict[str, Any]:
        return self.request("POST", "/v1/x",
                            self._eval_payload(profile, params),
                            deadline_ms=deadline_ms)

    def hecr(self, profile: Sequence[float], *,
             params: dict[str, float] | None = None,
             deadline_ms: float | None = None) -> dict[str, Any]:
        return self.request("POST", "/v1/hecr",
                            self._eval_payload(profile, params),
                            deadline_ms=deadline_ms)

    def work(self, profile: Sequence[float], *,
             lifespan: float | None = None,
             params: dict[str, float] | None = None,
             deadline_ms: float | None = None) -> dict[str, Any]:
        payload = self._eval_payload(profile, params)
        if lifespan is not None:
            payload["lifespan"] = lifespan
        return self.request("POST", "/v1/work", payload,
                            deadline_ms=deadline_ms)

    def allocate(self, profile: Sequence[float], *, lifespan: float,
                 protocol: str = "fifo",
                 startup_order: Sequence[int] | None = None,
                 finishing_order: Sequence[int] | None = None,
                 enforce_separation: bool = True,
                 params: dict[str, float] | None = None,
                 deadline_ms: float | None = None) -> dict[str, Any]:
        payload = self._eval_payload(profile, params)
        payload["lifespan"] = lifespan
        payload["protocol"] = protocol
        if startup_order is not None:
            payload["startup_order"] = list(startup_order)
        if finishing_order is not None:
            payload["finishing_order"] = list(finishing_order)
        if protocol == "lp":
            payload["enforce_separation"] = enforce_separation
        return self.request("POST", "/v1/allocate", payload,
                            deadline_ms=deadline_ms)
