"""Running the service: the CLI's blocking entry and a test harness.

:func:`run_service` owns an event loop for the life of the process —
it is what ``repro-hetero serve`` calls, and it translates SIGINT/
SIGTERM into a clean shutdown (drain the batcher, close the socket).

:class:`ServiceThread` hosts the same service on a background thread
with its own loop and an ephemeral port — the harness used by the
endpoint tests, the CI smoke job, and the throughput benchmark, where
client and server share one process and the server must come up/down
deterministically.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Any, Callable

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.service.app import ReproService
from repro.service.client import ServiceClient
from repro.service.config import ServiceConfig

__all__ = ["ServiceThread", "run_service"]


def run_service(config: ServiceConfig, *,
                registry: MetricsRegistry | None = None,
                tracer: Tracer | None = None,
                ready: Callable[[ReproService], None] | None = None) -> None:
    """Serve until interrupted; returns after a clean shutdown.

    ``ready`` (if given) is called once the socket is bound, with the
    running service — the CLI uses it to print the listen address.
    Raises ``OSError`` if the bind fails and lets library errors (bad
    engine, bad config) propagate for the CLI's exit-code mapping.
    """
    async def main() -> None:
        service = ReproService(config, registry=registry, tracer=tracer)
        await service.start()
        if ready is not None:
            ready(service)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signame in ("SIGINT", "SIGTERM"):
            import signal
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(getattr(signal, signame), stop.set)
        try:
            await stop.wait()
        finally:
            await service.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # signal handlers unavailable (rare)
        pass


class ServiceThread:
    """A live service on a background thread, for in-process callers.

    Binds an ephemeral port by default (``port=0``) so parallel test
    runs never collide.  Entering the context blocks until the socket
    is accepting; exiting drains and joins.

    Examples
    --------
    ::

        with ServiceThread(ServiceConfig(port=0)) as server:
            with server.client() as client:
                assert client.healthz()["status"] == "ok"
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 startup_timeout: float = 10.0) -> None:
        self.config = config or ServiceConfig(port=0)
        self.registry = registry
        self.tracer = tracer
        self.startup_timeout = float(startup_timeout)
        self.service: ReproService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "ServiceThread":
        if self._thread is not None:
            raise ReproError("ServiceThread is already started")
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):
            raise ReproError("service thread did not come up in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        async def main() -> None:
            service = ReproService(self.config, registry=self.registry,
                                   tracer=self.tracer)
            try:
                await service.start()
            except BaseException as exc:
                self._startup_error = exc
                self._ready.set()
                return
            self.service = service
            self._loop = asyncio.get_running_loop()
            self._stop_event = asyncio.Event()
            self._ready.set()
            try:
                await self._stop_event.wait()
            finally:
                await service.stop()
        asyncio.run(main())

    def stop(self) -> None:
        if self._thread is None:
            return
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=self.startup_timeout)
        self._thread = None
        self._loop = None
        self.service = None

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- addressing ----------------------------------------------------
    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        if self.service is None:
            raise ReproError("ServiceThread is not running")
        return self.service.port

    def client(self, *, timeout: float = 30.0) -> ServiceClient:
        """A fresh client bound to this server (one per thread, please)."""
        return ServiceClient(self.host, self.port, timeout=timeout)
