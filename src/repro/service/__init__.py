"""`repro.service`: an async serving layer for the paper's hot queries.

The ROADMAP's north star is an online system, not a pile of one-shot
CLI processes.  This package turns the library's small, hot, cacheable
computations — ``X(P)``, ``W(L;P)``, HECR, FIFO/LP allocations, and
registered experiments — into JSON-over-HTTP endpoints served by a
single-process :mod:`asyncio` server written directly on asyncio
streams (stdlib only; no new runtime dependencies).

Layout
------
:mod:`repro.service.config`
    :class:`ServiceConfig` — every tunable in one validated object.
:mod:`repro.service.http`
    A minimal HTTP/1.1 request parser / response writer for asyncio
    streams, with hard header/body limits.
:mod:`repro.service.admission`
    Token-bucket rate limiting and the max-in-flight counter behind
    429/503 load shedding.
:mod:`repro.service.respcache`
    The TTL'd LRU response cache (keyed like the batch layer's
    :class:`~repro.batch.cache.ResultCache`).
:mod:`repro.service.coalescer`
    The micro-batching heart: concurrent evaluation requests are
    collected for a small window and solved in one shot —
    bit-identically to per-request solves.
:mod:`repro.service.app`
    :class:`ReproService` — routing, handlers, deadlines, metrics.
:mod:`repro.service.client`
    :class:`ServiceClient` — a small blocking client for tests, the
    load generator, and scripts.
:mod:`repro.service.runtime`
    Blocking entry points: :func:`run_service` (the CLI's ``serve``)
    and :class:`ServiceThread` (a background server for tests).
:mod:`repro.service.supervisor`
    :class:`Supervisor` — the pre-fork multi-worker mode behind
    ``serve --workers N``: SO_REUSEPORT port sharing, per-worker
    admission budgets, crash restarts, aggregate metrics.

See ``docs/SERVICE.md`` for endpoint semantics, batching guarantees,
shedding behaviour, and the multi-worker scale-out model.
"""

from repro.service.app import ReproService
from repro.service.client import ServiceClient, ServiceError
from repro.service.config import ServiceConfig
from repro.service.runtime import ServiceThread, run_service
from repro.service.supervisor import Supervisor

__all__ = ["ReproService", "ServiceClient", "ServiceError", "ServiceConfig",
           "ServiceThread", "Supervisor", "run_service"]
