"""Pre-fork supervisor: N worker processes behind one listening port.

``repro-hetero serve --workers N`` runs one :class:`Supervisor` whose
only jobs are process lifecycle and aggregation — every request is
served by an ordinary single-process :class:`~repro.service.app.
ReproService` inside a forked worker:

* **Port sharing.**  With ``SO_REUSEPORT`` (``socket_mode="reuseport"``,
  the Linux default) the parent binds a *placeholder* socket — never
  listening, it exists to resolve ``port=0`` and keep the port reserved
  across worker restarts — and every worker binds + listens on its own
  ``SO_REUSEPORT`` socket, letting the kernel load-balance accepts.
  Where the option is missing (``"inherit"``), the parent binds and
  listens once and forked workers accept from the shared queue.
* **Budget split.**  The configured ``rate`` / ``max_inflight`` /
  ``burst`` are cluster totals; each worker gets ``rate/N``,
  ``ceil(inflight/N)``, and a burst share inflated by
  :data:`BURST_SHARE` (kernel balancing is stochastic, so a worker may
  transiently see more than 1/N of a burst).  Shedding semantics stay
  correct in aggregate without any cross-process token traffic.
* **Crash restarts.**  A worker that dies after becoming ready is
  respawned with exponential backoff; more than ``respawn_budget``
  deaths inside one ``stable_after`` window means the worker is
  systematically broken — the supervisor tears the fleet down and
  exits ``4`` with one clear stderr line.  A worker that fails *before*
  becoming ready is a configuration problem, reported immediately with
  the CLI's usual exit-code mapping (no respawn storm).
* **Fan-down.**  SIGTERM/SIGINT to the supervisor forwards SIGTERM to
  every worker; each drains (stop accepting → finish in-flight → 503
  stragglers) within ``drain_timeout`` and the supervisor reaps them,
  leaving no orphans.
* **Aggregation.**  Each worker's registry carries a constant
  ``worker`` label and is flushed (atomically) to a JSON dump file;
  ``--metrics-port`` serves a supervisor-side ``GET /metrics`` that
  merges the dumps with the supervisor's own series
  (``svc_supervisor_restarts_total{worker}``,
  ``svc_supervisor_workers``) plus a ``GET /healthz`` fleet view.
  Workers also share one on-disk cache tier
  (:class:`~repro.batch.shared_cache.SharedCache`) so identical
  requests landing on different workers compute once.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import math
import multiprocessing
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

from repro.errors import InvalidParameterError, ReproError
from repro.obs.metrics import MetricsRegistry, set_default_registry
from repro.service.app import ReproService
from repro.service.config import ServiceConfig
from repro.util.fsio import atomic_write_text

__all__ = ["Supervisor", "worker_config", "BURST_SHARE",
           "EXIT_RESPAWN_BUDGET"]

#: Extra burst headroom granted to each worker beyond its 1/N share.
BURST_SHARE = 0.25

#: Supervisor exit code: a worker kept crashing past its respawn budget.
EXIT_RESPAWN_BUDGET = 4

#: Startup-error type names that map to the CLI's exit-code-3 family.
_FAULT_ERROR_NAMES = frozenset(
    {"SimulationError", "FaultInjectionError", "RecoveryError"})


def _log(message: str) -> None:
    print(f"repro-hetero supervisor: {message}", file=sys.stderr, flush=True)


# ---------------------------------------------------------------------------
# per-worker configuration
# ---------------------------------------------------------------------------

def worker_config(config: ServiceConfig, index: int, *,
                  port: int | None = None,
                  metrics_flush_path: str | None = None,
                  shared_cache_dir: str | None = None) -> ServiceConfig:
    """One worker's derived config: its slice of the cluster budgets.

    ``rate`` and ``max_inflight`` are divided by ``workers`` (inflight
    rounds up so every worker can hold at least one request);  ``burst``
    gets a ``1/N`` share inflated by :data:`BURST_SHARE` — capped at
    the original burst — because the kernel's accept balancing is
    stochastic, not round-robin.  Rate ``0`` (unlimited) stays ``0``.
    """
    workers = config.workers
    if not (0 <= index < workers):
        raise InvalidParameterError(
            f"worker index {index!r} out of range for {workers} workers")
    rate = config.rate / workers if config.rate > 0 else 0.0
    inflight = max(1, math.ceil(config.max_inflight / workers))
    burst = config.burst
    if config.rate > 0:
        burst = max(1.0, min(config.burst,
                             (config.burst / workers) * (1.0 + BURST_SHARE)))
    return dataclasses.replace(
        config,
        worker_index=index,
        port=port if port is not None else config.port,
        rate=rate, max_inflight=inflight, burst=burst,
        metrics_flush_path=metrics_flush_path,
        shared_cache_dir=(shared_cache_dir if shared_cache_dir is not None
                          else config.shared_cache_dir))


# ---------------------------------------------------------------------------
# the worker process
# ---------------------------------------------------------------------------

class _MetricsFlusher:
    """Periodically publish one worker's registry dump, atomically."""

    def __init__(self, registry: MetricsRegistry, path: str,
                 interval: float) -> None:
        self._registry = registry
        self._path = path
        self._interval = max(interval, 0.05)
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-metrics-flush")

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self.flush()
        self.flush()  # final flush so shutdown-time counts survive

    def flush(self) -> None:
        try:
            atomic_write_text(self._path, json.dumps(self._registry.dump()))
        except OSError:
            pass  # aggregation is best-effort colour, never fatal


def _reuseport_socket(host: str, port: int, *, listen: bool = False
                      ) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


def _worker_main(config: ServiceConfig, inherited_sock: socket.socket | None,
                 conn: Any) -> None:
    """Entry point of one forked worker (runs until SIGTERM)."""
    # The supervisor coordinates shutdown via SIGTERM; a terminal ^C
    # delivers SIGINT to the whole process group, which workers must
    # ignore or they race their own drain.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    registry = MetricsRegistry(
        constant_labels={"worker": str(config.worker_index)})
    set_default_registry(registry)
    try:
        asyncio.run(_worker_async(config, inherited_sock, conn, registry))
    except BaseException as exc:  # noqa: BLE001 - report, then die visibly
        with contextlib.suppress(Exception):
            conn.send(("error", type(exc).__name__, str(exc)))
        raise SystemExit(1) from exc


async def _worker_async(config: ServiceConfig,
                        inherited_sock: socket.socket | None, conn: Any,
                        registry: MetricsRegistry) -> None:
    service = ReproService(config, registry=registry)
    try:
        if inherited_sock is not None:
            await service.start(sock=inherited_sock)
        else:
            await service.start(sock=_reuseport_socket(config.host,
                                                       config.port))
    except BaseException as exc:  # noqa: BLE001 - the pipe is the report
        conn.send(("error", type(exc).__name__, str(exc)))
        return
    conn.send(("ready", service.port))
    conn.close()

    flusher = None
    if config.metrics_flush_path:
        flusher = _MetricsFlusher(registry, config.metrics_flush_path,
                                  config.metrics_flush_interval)
        flusher.start()

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    with contextlib.suppress(NotImplementedError, ValueError):
        loop.add_signal_handler(signal.SIGTERM, stop.set)
    try:
        await stop.wait()
    finally:
        await service.stop()
        if flusher is not None:
            flusher.stop()


# ---------------------------------------------------------------------------
# the supervisor
# ---------------------------------------------------------------------------

class _WorkerSlot:
    __slots__ = ("index", "process", "pipe", "respawns", "spawned_at",
                 "ready")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Any = None
        self.pipe: Any = None
        self.respawns = 0
        self.spawned_at = 0.0
        self.ready = False


class Supervisor:
    """Owns the worker fleet of one ``serve --workers N`` invocation.

    ``run()`` blocks until shutdown and returns the process exit code
    (``0`` clean, ``1``/``3`` worker startup failure, ``4`` respawn
    budget exhausted).  For in-process callers (tests, benchmarks) use
    ``install_signals=False``, run :meth:`run` on a thread, await
    :meth:`wait_ready`, and later call :meth:`initiate_stop`.
    """

    def __init__(self, config: ServiceConfig, *,
                 install_signals: bool = True,
                 respawn_budget: int = 5,
                 backoff_base: float = 0.25,
                 backoff_cap: float = 5.0,
                 stable_after: float = 30.0,
                 startup_timeout: float = 30.0) -> None:
        if config.workers < 1:
            raise InvalidParameterError(
                f"workers must be >= 1, got {config.workers!r}")
        self.config = config
        self.install_signals = install_signals
        self.respawn_budget = int(respawn_budget)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.stable_after = float(stable_after)
        self.startup_timeout = float(startup_timeout)
        self.registry = MetricsRegistry()
        self.port: int | None = None
        self.metrics_port: int | None = None
        self.exit_reason: str | None = None
        self._ctx = multiprocessing.get_context("fork")
        self._slots = [_WorkerSlot(i) for i in range(config.workers)]
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._startup_error: tuple[str, str] | None = None
        self._listen_sock: socket.socket | None = None
        self._placeholder: socket.socket | None = None
        self._run_dir: str | None = None
        self._owns_run_dir = False
        self._shared_dir: str | None = None
        self._metrics_httpd: Any = None

    # -- external control ----------------------------------------------
    def initiate_stop(self) -> None:
        """Request a clean fan-down (thread-safe, signal-safe)."""
        self._stop.set()

    def wait_ready(self, timeout: float = 30.0) -> int:
        """Block until every worker accepted its socket; returns the port."""
        if not self._ready.wait(timeout):
            raise ReproError("supervisor workers did not come up in time")
        if self._startup_error is not None:
            name, message = self._startup_error
            raise ReproError(f"worker failed to start: {name}: {message}")
        assert self.port is not None
        return self.port

    # -- socket strategy -----------------------------------------------
    def _resolve_socket_mode(self) -> str:
        mode = self.config.socket_mode
        if mode == "auto":
            return ("reuseport" if hasattr(socket, "SO_REUSEPORT")
                    else "inherit")
        if mode == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
            raise InvalidParameterError(
                "socket_mode='reuseport' but this platform has no "
                "SO_REUSEPORT; use 'inherit' or 'auto'")
        return mode

    def _bind(self) -> None:
        mode = self._resolve_socket_mode()
        if mode == "reuseport":
            # Placeholder: resolves port=0 and keeps the port reserved
            # while workers restart, but never listens — a bound
            # non-listening socket takes no part in accept balancing.
            self._placeholder = _reuseport_socket(self.config.host,
                                                  self.config.port)
            self.port = self._placeholder.getsockname()[1]
        else:
            self._listen_sock = socket.socket(socket.AF_INET,
                                              socket.SOCK_STREAM)
            self._listen_sock.setsockopt(socket.SOL_SOCKET,
                                         socket.SO_REUSEADDR, 1)
            self._listen_sock.bind((self.config.host, self.config.port))
            self._listen_sock.listen(128)
            self.port = self._listen_sock.getsockname()[1]

    # -- worker lifecycle ----------------------------------------------
    def _flush_path(self, index: int) -> str:
        assert self._run_dir is not None
        return str(Path(self._run_dir) / f"worker-{index}.metrics.json")

    def _spawn(self, slot: _WorkerSlot) -> None:
        recv, send = self._ctx.Pipe(duplex=False)
        cfg = worker_config(
            self.config, slot.index, port=self.port,
            metrics_flush_path=self._flush_path(slot.index),
            shared_cache_dir=self._shared_dir)
        slot.process = self._ctx.Process(
            target=_worker_main, args=(cfg, self._listen_sock, send),
            name=f"repro-worker-{slot.index}", daemon=False)
        slot.pipe = recv
        slot.ready = False
        slot.spawned_at = time.monotonic()
        slot.process.start()
        send.close()
        self.registry.gauge(
            "svc_supervisor_workers", "configured worker count"
        ).set(self.config.workers)

    def _await_ready(self, slot: _WorkerSlot, timeout: float) -> str | None:
        """Wait for the slot's ready/error message; None means ready."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if slot.pipe.poll(0.05):
                try:
                    message = slot.pipe.recv()
                except (EOFError, OSError):
                    return "worker closed its pipe before reporting ready"
                if message[0] == "ready":
                    slot.ready = True
                    return None
                if message[0] == "error":
                    self._startup_error = (message[1], message[2])
                    return f"{message[1]}: {message[2]}"
            if not slot.process.is_alive():
                return (f"worker {slot.index} died during startup "
                        f"(exit code {slot.process.exitcode})")
            if self._stop.is_set():
                return None  # shutting down anyway
        return f"worker {slot.index} not ready after {timeout:.0f}s"

    # -- run loop -------------------------------------------------------
    def run(self) -> int:
        """Serve until stopped; returns the supervisor's exit code."""
        try:
            return self._run()
        finally:
            self._cleanup()

    def _run(self) -> int:
        self._bind()
        self._run_dir = tempfile.mkdtemp(prefix="repro-supervisor-")
        self._owns_run_dir = True
        if self.config.no_shared_cache:
            self._shared_dir = None
        elif self.config.shared_cache_dir is not None:
            self._shared_dir = self.config.shared_cache_dir
        else:
            self._shared_dir = str(Path(self._run_dir) / "shared")

        if self.install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                with contextlib.suppress(ValueError):  # non-main thread
                    signal.signal(signum,
                                  lambda *_args: self._stop.set())

        for slot in self._slots:
            self._spawn(slot)
            failure = self._await_ready(slot, self.startup_timeout)
            if failure is not None:
                _log(f"startup failed: {failure}")
                self.exit_reason = f"startup: {failure}"
                self._ready.set()
                self._fan_down()
                name = (self._startup_error or ("", ""))[0]
                return 3 if name in _FAULT_ERROR_NAMES else 1

        if self.config.metrics_port is not None:
            self._start_metrics_endpoint()
        self._ready.set()
        _log(f"{self.config.workers} worker(s) ready on "
             f"{self.config.host}:{self.port} "
             f"[{self._resolve_socket_mode()}]")

        code = self._monitor()
        self._fan_down()
        return code

    def _monitor(self) -> int:
        while not self._stop.is_set():
            self._stop.wait(0.05)
            for slot in self._slots:
                if self._stop.is_set():
                    break
                if slot.process is None or slot.process.is_alive():
                    continue
                exitcode = slot.process.exitcode
                now = time.monotonic()
                if now - slot.spawned_at > self.stable_after:
                    slot.respawns = 0  # it ran fine for a while; forgive
                slot.respawns += 1
                self.registry.counter(
                    "svc_supervisor_restarts_total",
                    "worker crash-restarts performed by the supervisor"
                ).inc(worker=slot.index)
                if slot.respawns > self.respawn_budget:
                    _log(f"worker {slot.index} crashed {slot.respawns} "
                         f"times (last exit code {exitcode}); respawn "
                         f"budget ({self.respawn_budget}) exhausted — "
                         f"shutting down")
                    self.exit_reason = "respawn budget exhausted"
                    return EXIT_RESPAWN_BUDGET
                backoff = min(self.backoff_cap,
                              self.backoff_base * 2 ** (slot.respawns - 1))
                _log(f"worker {slot.index} exited with code {exitcode}; "
                     f"respawn {slot.respawns}/{self.respawn_budget} "
                     f"in {backoff:.2f}s")
                if self._stop.wait(backoff):
                    break
                self._spawn(slot)
                failure = self._await_ready(slot, self.startup_timeout)
                if failure is not None and not self._stop.is_set():
                    _log(f"respawned worker {slot.index} failed: {failure}")
                    # Counts against the same budget on its next death;
                    # a dead-on-arrival respawn loops straight back here.
        self.exit_reason = self.exit_reason or "stopped"
        return 0

    def _fan_down(self) -> None:
        deadline = time.monotonic() + self.config.drain_timeout + 2.0
        for slot in self._slots:
            if slot.process is not None and slot.process.is_alive():
                with contextlib.suppress(ProcessLookupError, OSError):
                    os.kill(slot.process.pid, signal.SIGTERM)
        for slot in self._slots:
            if slot.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            slot.process.join(timeout=remaining)
            if slot.process.is_alive():
                _log(f"worker {slot.index} ignored SIGTERM; killing")
                slot.process.kill()
                slot.process.join(timeout=2.0)

    def _cleanup(self) -> None:
        if self._metrics_httpd is not None:
            with contextlib.suppress(Exception):
                self._metrics_httpd.shutdown()
                self._metrics_httpd.server_close()
            self._metrics_httpd = None
        for sock in (self._listen_sock, self._placeholder):
            if sock is not None:
                with contextlib.suppress(OSError):
                    sock.close()
        self._listen_sock = self._placeholder = None
        if self._owns_run_dir and self._run_dir:
            shutil.rmtree(self._run_dir, ignore_errors=True)
        self._run_dir = None

    # -- aggregation ----------------------------------------------------
    def aggregate_registry(self) -> MetricsRegistry:
        """A fresh registry merging every worker dump + supervisor series.

        Worker cells already carry their ``worker`` label (constant
        labels are baked in at update time), so the merge keeps every
        per-worker series distinct; counters add, gauges keep maxima.
        """
        merged = MetricsRegistry()
        if self._run_dir is not None:
            for index in range(self.config.workers):
                try:
                    dump = json.loads(Path(self._flush_path(index))
                                      .read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    continue  # worker has not flushed yet
                with contextlib.suppress(Exception):
                    merged.merge(dump)
        merged.merge(self.registry.dump())
        return merged

    def fleet_health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "workers": [
                {"index": slot.index,
                 "pid": slot.process.pid if slot.process else None,
                 "alive": bool(slot.process and slot.process.is_alive()),
                 "respawns": slot.respawns}
                for slot in self._slots],
            "port": self.port,
        }

    def _start_metrics_endpoint(self) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        from repro.obs.export import prometheus_text

        supervisor = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                if self.path == "/metrics":
                    body = prometheus_text(
                        supervisor.aggregate_registry()).encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif self.path == "/healthz":
                    body = (json.dumps(supervisor.fleet_health())
                            .encode("utf-8") + b"\n")
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # the access log belongs to the workers

        self._metrics_httpd = ThreadingHTTPServer(
            (self.config.host, self.config.metrics_port), Handler)
        self.metrics_port = self._metrics_httpd.server_address[1]
        thread = threading.Thread(target=self._metrics_httpd.serve_forever,
                                  name="repro-supervisor-metrics",
                                  daemon=True)
        thread.start()
        _log(f"aggregate /metrics on "
             f"{self.config.host}:{self.metrics_port}")
