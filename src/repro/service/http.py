"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough protocol for the service's JSON endpoints: request-line +
header parsing with hard size limits, ``Content-Length`` bodies,
keep-alive by default, and a response writer that always emits a
correct ``Content-Length``.  Chunked request bodies, upgrades, and
multi-line (obs-fold) headers are rejected rather than half-supported.

The parser raises :class:`HttpError` with the *status code the client
should see* — the connection handler turns it into a response and, for
framing-level problems, closes the connection (once framing is in
doubt, nothing later on the socket can be trusted).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpError", "Request", "read_request", "render_response",
           "STATUS_REASONS"]

STATUS_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    501: "Not Implemented", 503: "Service Unavailable",
    504: "Gateway Timeout",
}

_SUPPORTED_METHODS = ("GET", "POST", "HEAD", "DELETE", "PUT")


class HttpError(Exception):
    """A protocol-level problem, carrying the client-facing status.

    ``recoverable`` says whether the connection's framing is still
    intact (e.g. an over-long but correctly delimited body) — when
    False the handler must close after responding.
    """

    def __init__(self, status: int, message: str, *,
                 recoverable: bool = False) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.recoverable = recoverable


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def header_float(self, name: str) -> float | None:
        """A header parsed as a finite non-negative float, else None."""
        raw = self.headers.get(name)
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            return None
        return value if value == value and 0 <= value < float("inf") else None


async def read_request(reader: asyncio.StreamReader, *,
                       max_header_bytes: int = 32 << 10,
                       max_body_bytes: int = 1 << 20) -> Request | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for anything malformed or over-limit.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request head exceeds the stream limit") from None
    if len(head) > max_header_bytes:
        raise HttpError(431, f"request head exceeds {max_header_bytes} bytes")

    lines = head.split(b"\r\n")
    try:
        request_line = lines[0].decode("ascii")
        method, target, version = request_line.split(" ")
    except (UnicodeDecodeError, ValueError):
        raise HttpError(400, "malformed request line") from None
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    if method not in _SUPPORTED_METHODS:
        raise HttpError(501, f"method {method!r} not implemented")

    headers: dict[str, str] = {}
    for raw in lines[1:]:
        if not raw:
            continue
        if raw[:1] in (b" ", b"\t"):
            raise HttpError(400, "obs-fold header continuations not supported")
        name, sep, value = raw.partition(b":")
        if not sep or not name:
            raise HttpError(400, f"malformed header line {raw[:64]!r}")
        try:
            headers[name.decode("ascii").strip().lower()] = \
                value.decode("latin-1").strip()
        except UnicodeDecodeError:
            raise HttpError(400, "non-ASCII header name") from None

    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked request bodies not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "negative Content-Length")
        if length > max_body_bytes:
            raise HttpError(413, f"body of {length} bytes exceeds the "
                                 f"{max_body_bytes}-byte limit")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body") from None

    parts = urlsplit(target)
    query = {k: v for k, v in parse_qsl(parts.query, keep_blank_values=True)}
    return Request(method=method, path=unquote(parts.path), query=query,
                   headers=headers, body=body)


def render_response(status: int, body: bytes, *,
                    content_type: str = "application/json",
                    extra_headers: dict[str, str] | None = None,
                    keep_alive: bool = True) -> bytes:
    """Serialise one response, Content-Length included."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
