"""Service configuration: one validated, immutable bundle of tunables.

Defaults are chosen for a loopback development server; the CLI's
``serve`` subcommand exposes the operationally interesting knobs
(``--batch-window``, ``--max-inflight``, ``--rate``, …) and leaves the
rest at these values.  Validation happens at construction so a
misconfigured server refuses to start instead of misbehaving under
load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Every tunable of a :class:`~repro.service.app.ReproService`.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` asks the OS for an ephemeral port
        (the bound port is reported by ``ReproService.port``).
    batch_window:
        Seconds the micro-batching coalescer waits after the first
        queued evaluation request for companions before solving
        (``0`` disables coalescing: every request solves alone).
    max_batch:
        Hard cap on requests solved in one coalesced batch; a full
        batch solves immediately without waiting out the window.
    max_inflight:
        Admitted-but-unanswered request ceiling; request number
        ``max_inflight + 1`` is shed with ``503`` + ``Retry-After``.
    rate, burst:
        Token-bucket admission control: sustained requests/second and
        bucket capacity.  ``rate=0`` disables rate limiting.  An empty
        bucket sheds with ``429`` + ``Retry-After``.
    deadline:
        Default per-request deadline in seconds (``0`` = none).  A
        request may lower/raise its own via the ``X-Repro-Deadline-Ms``
        header; expiry cancels the work and answers ``504``.
    cache_entries, cache_ttl:
        The TTL'd LRU response cache for the deterministic evaluation
        endpoints.  ``cache_entries=0`` or ``cache_ttl=0`` disables it.
    jobs, no_result_cache, result_cache_dir:
        Experiment dispatch: worker processes for
        :func:`repro.batch.run_batch` and its on-disk
        :class:`~repro.batch.cache.ResultCache` location / kill switch.
    engine:
        Optional simulation engine forced for the whole process (and
        exported via ``$REPRO_SIM_ENGINE`` so dispatch workers inherit
        it); ``None`` keeps the process default.
    max_body_bytes, max_header_bytes:
        Hard HTTP limits; oversized requests are rejected with ``413``.
    no_store, store_dir:
        The run-history store (``repro.obs.store.RunStore``): every
        ``/v1/*`` request and experiment dispatch is persisted for the
        ``obs`` CLI and the ``/v1/obs/*`` endpoints.  ``no_store=True``
        disables persistence entirely; ``store_dir`` overrides the
        default state directory.
    slo_latency, slo_objective:
        The per-route SLO behind the ``svc_slo_burn_rate`` gauges: a
        request is "good" when it answers below ``slo_latency`` seconds
        with a non-5xx status, and the burn rate is the bad fraction
        divided by the error budget ``1 - slo_objective`` (burn > 1
        means the route is burning budget faster than the SLO allows).
        ``slo_latency=0`` disables the gauges.
    log_level:
        Threshold for the service's stderr logging (``repro.service``
        loggers): one JSON access-log line per request is emitted at
        INFO, lifecycle messages at INFO, problems at WARNING+.
    workers, worker_index:
        Pre-fork scale-out: ``workers > 1`` makes ``serve`` run a
        supervisor with that many worker processes sharing the port
        (``SO_REUSEPORT`` when the platform has it).  ``worker_index``
        identifies one worker inside its own process — the supervisor
        sets it; user configs leave it at ``None``.  Note the global
        ``rate``/``max_inflight``/``burst`` are *totals*: the
        supervisor splits them into per-worker budgets.
    drain_timeout:
        Seconds a stopping server waits for in-flight requests after it
        stops accepting; new requests during the drain answer ``503`` +
        ``Retry-After`` instead of a connection reset.
    shared_cache_dir, no_shared_cache:
        The cross-process cache tier (``repro.batch.shared_cache``)
        shared by the workers' response caches and experiment dispatch.
        Defaults to a directory under the result-cache root; multi-
        worker serving creates it automatically.  ``no_shared_cache``
        keeps every worker's caches process-private (dedup off).
    socket_mode:
        How workers share the listening port: ``"reuseport"`` (each
        worker binds its own ``SO_REUSEPORT`` socket — kernel load
        balancing), ``"inherit"`` (the supervisor binds and listens,
        workers accept on the inherited socket), or ``"auto"`` (use
        ``SO_REUSEPORT`` when available, else inherit).
    metrics_flush_path, metrics_flush_interval:
        Worker-side metrics export for the supervisor aggregate: each
        worker atomically rewrites a JSON registry dump at this path
        every ``metrics_flush_interval`` seconds.  Set by the
        supervisor; ``None`` disables flushing.
    metrics_port:
        Supervisor-side aggregate ``/metrics`` + ``/healthz`` listener
        (``0`` = ephemeral, ``None`` disables the aggregate endpoint).
    """

    host: str = "127.0.0.1"
    port: int = 8023
    batch_window: float = 0.002
    max_batch: int = 64
    max_inflight: int = 64
    rate: float = 0.0
    burst: float = 64.0
    deadline: float = 0.0
    cache_entries: int = 1024
    cache_ttl: float = 60.0
    jobs: int = 1
    no_result_cache: bool = False
    result_cache_dir: str | None = None
    engine: str | None = None
    max_body_bytes: int = 1 << 20
    max_header_bytes: int = 32 << 10
    no_store: bool = False
    store_dir: str | None = None
    slo_latency: float = 0.25
    slo_objective: float = 0.99
    log_level: str = "warning"
    workers: int = 1
    worker_index: int | None = None
    drain_timeout: float = 5.0
    shared_cache_dir: str | None = None
    no_shared_cache: bool = False
    socket_mode: str = "auto"
    metrics_flush_path: str | None = None
    metrics_flush_interval: float = 0.5
    metrics_port: int | None = None

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise InvalidParameterError(f"port must be in [0, 65535], got {self.port!r}")
        for name, minimum in (("batch_window", 0.0), ("rate", 0.0),
                              ("deadline", 0.0), ("cache_ttl", 0.0)):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value != value or value < minimum:
                raise InvalidParameterError(
                    f"{name} must be a number >= {minimum}, got {value!r}")
        for name, minimum in (("max_batch", 1), ("max_inflight", 1),
                              ("jobs", 1), ("cache_entries", 0),
                              ("max_body_bytes", 1), ("max_header_bytes", 1)):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < minimum:
                raise InvalidParameterError(
                    f"{name} must be an integer >= {minimum}, got {value!r}")
        if self.rate > 0 and not self.burst >= 1:
            raise InvalidParameterError(
                f"burst must be >= 1 when rate limiting is on, got {self.burst!r}")
        if not isinstance(self.slo_latency, (int, float)) \
                or isinstance(self.slo_latency, bool) \
                or self.slo_latency != self.slo_latency or self.slo_latency < 0:
            raise InvalidParameterError(
                f"slo_latency must be a number >= 0, got {self.slo_latency!r}")
        if not isinstance(self.slo_objective, (int, float)) \
                or isinstance(self.slo_objective, bool) \
                or not (0.0 < self.slo_objective < 1.0):
            raise InvalidParameterError(
                f"slo_objective must be in (0, 1), got {self.slo_objective!r}")
        if self.log_level not in ("debug", "info", "warning", "error"):
            raise InvalidParameterError(
                f"log_level must be one of debug/info/warning/error, "
                f"got {self.log_level!r}")
        if not isinstance(self.workers, int) or isinstance(self.workers, bool) \
                or self.workers < 1:
            raise InvalidParameterError(
                f"workers must be an integer >= 1, got {self.workers!r}")
        if self.worker_index is not None and (
                not isinstance(self.worker_index, int)
                or isinstance(self.worker_index, bool)
                or self.worker_index < 0):
            raise InvalidParameterError(
                f"worker_index must be None or an integer >= 0, "
                f"got {self.worker_index!r}")
        for name in ("drain_timeout", "metrics_flush_interval"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool) \
                    or value != value or value < 0:
                raise InvalidParameterError(
                    f"{name} must be a number >= 0, got {value!r}")
        if self.socket_mode not in ("auto", "reuseport", "inherit"):
            raise InvalidParameterError(
                f"socket_mode must be one of auto/reuseport/inherit, "
                f"got {self.socket_mode!r}")
        if self.metrics_port is not None and not (0 <= self.metrics_port <= 65535):
            raise InvalidParameterError(
                f"metrics_port must be None or in [0, 65535], "
                f"got {self.metrics_port!r}")
