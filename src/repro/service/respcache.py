"""A TTL'd LRU cache for deterministic endpoint responses.

Keys are content addresses in the style of the batch layer's
:class:`~repro.batch.cache.ResultCache`: the SHA-256 of the canonical
JSON form of ``(route, request payload, package version)``.  The
version folds in so a code change invalidates every entry at once —
the same contract that makes the on-disk result cache safe.

Values are *rendered response bodies* (bytes), so a hit skips JSON
encoding as well as evaluation.  The store is a plain ``OrderedDict``
guarded by a lock: the server mutates it from the event-loop thread,
but tests and the stats endpoint may peek from others.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable

from repro import __version__

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded mapping of content key → (expiry, response bytes).

    ``max_entries=0`` or ``ttl=0`` turns the cache into a no-op (every
    ``get`` misses, every ``put`` is dropped) so the server logic never
    branches on "is caching enabled".
    """

    def __init__(self, max_entries: int, ttl: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.max_entries = int(max_entries)
        self.ttl = float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, bytes]] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.ttl > 0

    @staticmethod
    def key(route: str, payload: Any) -> str:
        """The content address of one request (canonical-JSON SHA-256)."""
        canonical = json.dumps(
            {"route": route, "payload": payload, "version": __version__},
            sort_keys=True, separators=(",", ":"), allow_nan=False)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def get(self, key: str) -> bytes | None:
        """The live cached body, or None (expired entries are evicted)."""
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            expires, body = entry
            if self._clock() >= expires:
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return body

    def put(self, key: str, body: bytes) -> None:
        """Store one rendered body, evicting LRU entries past the cap."""
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl, body)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)
