"""A TTL'd LRU cache for deterministic endpoint responses.

Keys are content addresses in the style of the batch layer's
:class:`~repro.batch.cache.ResultCache`: the SHA-256 of the canonical
JSON form of ``(route, request payload, package version)``.  The
version folds in so a code change invalidates every entry at once —
the same contract that makes the on-disk result cache safe.

Values are *rendered response bodies* (bytes), so a hit skips JSON
encoding as well as evaluation.  The store is a plain ``OrderedDict``
guarded by a lock: the server mutates it from the event-loop thread,
but tests and the stats endpoint may peek from others.

Under ``serve --workers N`` the cache optionally gains a second,
process-shared tier (a :class:`~repro.batch.shared_cache.SharedCache`):
a memory miss falls through to the shared directory, and a shared hit
is promoted into memory with its *remaining* TTL, so one worker's
rendered response serves every worker without a fresh compute — and
without any worker extending the entry's lifetime.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable

from repro import __version__

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.batch.shared_cache import SharedCache

__all__ = ["ResponseCache"]


class ResponseCache:
    """Bounded mapping of content key → (expiry, response bytes).

    ``max_entries=0`` or ``ttl=0`` turns the cache into a no-op (every
    ``get`` misses, every ``put`` is dropped) so the server logic never
    branches on "is caching enabled".  ``shared`` optionally attaches a
    cross-process tier; ``last_tier`` records where the most recent
    ``get`` was answered from (``"memory"``, ``"shared"``, or ``None``
    on a miss) for the caller's metrics — safe because each worker's
    event loop is the only thread issuing gets.
    """

    def __init__(self, max_entries: int, ttl: float,
                 clock: Callable[[], float] = time.monotonic,
                 shared: "SharedCache | None" = None) -> None:
        self.max_entries = int(max_entries)
        self.ttl = float(ttl)
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, bytes]] = OrderedDict()
        self.shared = shared
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0
        self.last_tier: str | None = None

    @property
    def enabled(self) -> bool:
        return self.max_entries > 0 and self.ttl > 0

    @staticmethod
    def key(route: str, payload: Any) -> str:
        """The content address of one request (canonical-JSON SHA-256)."""
        canonical = json.dumps(
            {"route": route, "payload": payload, "version": __version__},
            sort_keys=True, separators=(",", ":"), allow_nan=False)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def get(self, key: str) -> bytes | None:
        """The live cached body, or None (expired entries are evicted)."""
        self.last_tier = None
        if not self.enabled:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                expires, body = entry
                if self._clock() < expires:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self.last_tier = "memory"
                    return body
                del self._entries[key]
        body = self._get_shared(key)
        if body is not None:
            self.hits += 1
            self.shared_hits += 1
            self.last_tier = "shared"
            return body
        self.misses += 1
        return None

    def _get_shared(self, key: str) -> bytes | None:
        """A shared-tier hit, promoted into memory with its remaining TTL."""
        if self.shared is None:
            return None
        found = self.shared.get_with_expiry(key)
        if found is None:
            return None
        text, expires = found
        if not isinstance(text, str):
            return None
        body = text.encode("utf-8")
        remaining = self.ttl
        if expires is not None:
            remaining = min(remaining, expires - time.time())
            if remaining <= 0:
                return None
        with self._lock:
            self._entries[key] = (self._clock() + remaining, body)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return body

    def put(self, key: str, body: bytes) -> None:
        """Store one rendered body, evicting LRU entries past the cap."""
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = (self._clock() + self.ttl, body)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        if self.shared is not None:
            self.shared.put(key, body.decode("utf-8"), ttl=self.ttl)

    def __len__(self) -> int:
        return len(self._entries)
