"""Micro-batched evaluation: the serving layer's heart.

Concurrent in-flight evaluation requests (``/v1/x``, ``/v1/work``,
``/v1/hecr``, ``/v1/allocate``) are collected for a short window (or
until ``max_batch`` of them are waiting) and solved **in one shot**:

* identical requests are *collapsed* — one solve fans its answer out to
  every waiter, which is what turns a thundering herd on a hot query
  into a single evaluation;
* requests needing ``X(P)`` share one evaluation per distinct
  ``(profile, params)`` in the batch: the solver first *primes* its
  float pool by stacking every pool-missing profile of a common
  ``(params, n)`` into one
  :class:`~repro.core.batch_kernels.ProfileBatch` and reducing eq. (1)
  columnar, one vectorised pass per micro-batch — each primed float is
  bit-identical to a fresh :func:`~repro.core.measure.x_measure` of its
  row;
* LP allocation requests against the same cluster are grouped and
  solved via :func:`~repro.protocols.general.lp_allocation_many`,
  which is bit-identical to per-pair :func:`lp_allocation` solves and
  amortises the constraint-assembly cost PR 4 vectorised.

**Bit-identity is the contract**: for any batch, every response equals
the response the same request would have produced in a batch of one.
All three mechanisms above only ever *reuse* a float that the
single-request path would have computed through the same code path
(the library's ``x=`` passthroughs are documented bit-identical), so
the property holds by construction — and
``tests/service/test_coalescer.py`` verifies it over randomised
concurrent request mixes.

:func:`solve_batch` is a synchronous pure function so the equivalence
property can be tested without a running server;
:class:`MicroBatcher` wraps it in the asyncio queue + window loop.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from typing import Any, Sequence

import numpy as np

from repro.core.batch_kernels import ProfileBatch
from repro.core.hecr import hecr
from repro.core.measure import work_production, work_rate, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.io import allocation_to_dict
from repro.protocols.fifo import fifo_allocation
from repro.protocols.general import lp_allocation_many

__all__ = ["EVAL_KINDS", "BatchSolver", "MicroBatcher", "request_key",
           "solve_batch"]

EVAL_KINDS = ("x", "work", "hecr", "allocate")

#: svc_batch_size histogram buckets: powers of two up to the default cap.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


def request_key(kind: str, payload: dict[str, Any]) -> tuple:
    """A hashable identity for one validated evaluation request.

    Two requests with equal keys are *the same question* and may share
    one solve (request collapsing).  The key covers every field that
    reaches the solver.
    """
    params = payload["params"]
    base = (kind, payload["profile"], params.tau, params.pi, params.delta)
    if kind == "work":
        return base + (payload.get("lifespan"),)
    if kind == "allocate":
        return base + (payload["lifespan"], payload["protocol"],
                       payload.get("startup_order"),
                       payload.get("finishing_order"),
                       payload.get("enforce_separation", True),
                       payload.get("scheme"),
                       payload.get("scheme_margin"))
    return base


class _XPool:
    """LRU pool of X-measure floats keyed by (profile, params).

    Every pooled float is bit-identical to a fresh ``x_measure`` of the
    same profile (whether it arrived through the scalar :meth:`x` path
    or a :meth:`seed` from a shared :class:`ProfileBatch` pass), so
    serving repeated profiles from the pool cannot move any response
    float — it only skips re-reducing eq. (1) for hot profiles.

    Counting contract: each :meth:`x` lookup records exactly one miss
    (the profile had to be evaluated) or one hit (an earlier request
    already paid for it).  A :meth:`seed` marks its entry *fresh*: the
    first :meth:`x` that consumes it records the miss the batch pass
    performed on its behalf, so the counters read the same whether a
    profile was evaluated columnar or scalar.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max(1, int(max_entries))
        self._entries: OrderedDict[tuple, float] = OrderedDict()
        self._fresh: set[tuple] = set()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(profile: tuple[float, ...], params: ModelParams) -> tuple:
        return (profile, params.tau, params.pi, params.delta)

    def _store(self, key: tuple, x: float) -> None:
        self._entries[key] = x
        while len(self._entries) > self.max_entries:
            evicted, _ = self._entries.popitem(last=False)
            self._fresh.discard(evicted)

    def peek(self, profile: tuple[float, ...],
             params: ModelParams) -> float | None:
        """Non-counting lookup — used to decide what a batch pass must prime."""
        return self._entries.get(self.key(profile, params))

    def seed(self, profile: tuple[float, ...], params: ModelParams,
             x: float) -> None:
        """Install a batch-computed X; the first consumer records the miss."""
        key = self.key(profile, params)
        if key not in self._entries:
            self._fresh.add(key)
        self._store(key, x)

    def x(self, profile: tuple[float, ...], params: ModelParams) -> float:
        key = self.key(profile, params)
        x = self._entries.get(key)
        if x is None:
            self.misses += 1
            x = x_measure(profile, params)
            self._store(key, x)
        elif key in self._fresh:
            self._fresh.discard(key)
            self.misses += 1
            self._entries.move_to_end(key)
        else:
            self.hits += 1
            self._entries.move_to_end(key)
        return x


class BatchSolver:
    """Stateful solver: an :class:`_XPool` plus the batch algorithm."""

    def __init__(self, xpool_entries: int = 256) -> None:
        self.xpool = _XPool(xpool_entries)
        #: Requests answered by another identical request's solve.
        self.collapsed = 0
        #: LP solves that rode a shared lp_allocation_many call.
        self.lp_grouped = 0
        #: Distinct profiles whose X came from a shared ProfileBatch pass.
        self.batch_evaluated = 0

    # -- columnar X priming -------------------------------------------
    def _prime_x_family(self, unique: "OrderedDict[tuple, dict]") -> None:
        """Evaluate the batch's pool-missing profiles columnar, in one pass.

        Every x-family request (``x``/``work``/``hecr``) whose profile is
        not already pooled is stacked with its same-``(params, n)``
        companions into one :class:`ProfileBatch`, whose per-row X is
        bit-identical to ``x_measure`` of the row — so seeding the pool
        from it cannot move any response float.  If a group's
        construction or reduction fails (e.g. one profile is
        non-positive), the group is simply *not* seeded: each member
        then falls back to the scalar pool path inside
        :meth:`_eval_x_family`'s per-request try block, which raises the
        exact per-request error a lone solve would have raised —
        priming never weakens error isolation.
        """
        groups: OrderedDict[tuple, OrderedDict[tuple, dict]] = OrderedDict()
        for key, payload in unique.items():
            if key[0] == "allocate":
                continue
            profile = payload["profile"]
            params = payload["params"]
            if self.xpool.peek(profile, params) is not None:
                continue
            gkey = (params.tau, params.pi, params.delta, len(profile))
            groups.setdefault(gkey, OrderedDict()).setdefault(profile, payload)
        for members in groups.values():
            profiles = list(members)
            params = next(iter(members.values()))["params"]
            try:
                xs = ProfileBatch(
                    np.asarray(profiles, dtype=float), copy=False).x(params)
            except Exception:
                continue  # scalar fallback per request; see docstring
            self.batch_evaluated += len(profiles)
            for profile, x in zip(profiles, xs):
                self.xpool.seed(profile, params, float(x))

    # -- per-kind evaluation ------------------------------------------
    def _eval_x_family(self, kind: str, payload: dict[str, Any]) -> dict:
        profile = payload["profile"]
        params = payload["params"]
        x = self.xpool.x(profile, params)
        if kind == "x":
            return {"x": x, "n": len(profile)}
        if kind == "hecr":
            return {"x": x, "hecr": hecr(Profile(profile), params, x=x),
                    "n": len(profile)}
        # kind == "work"
        rate = work_rate(profile, params, x=x)
        out = {"x": x, "work_rate": rate}
        lifespan = payload.get("lifespan")
        if lifespan is not None:
            out["lifespan"] = lifespan
            out["work"] = work_production(profile, params, lifespan, x=x)
        return out

    @staticmethod
    def _allocation_response(allocation) -> dict:
        return {"allocation": allocation_to_dict(allocation),
                "total_work": float(allocation.w.sum())}

    @staticmethod
    def _coded_response(payload: dict[str, Any]) -> dict:
        """Solve an allocate request carrying a redundancy scheme.

        Returns the redundant plan plus the coded structure: useful
        work, expected waste fraction, per-quantum membership.
        """
        # Imported here, not at module scope: the coded package is only
        # needed for scheme-carrying requests, and the lazy import keeps
        # the hot x/work/allocate path's import graph unchanged.
        from repro.coded import scheme_from_spec

        scheme = scheme_from_spec(payload["scheme"])
        plan = scheme.plan(Profile(payload["profile"]), payload["params"],
                           payload["lifespan"],
                           margin=payload["scheme_margin"])
        return {"allocation": allocation_to_dict(plan.allocation),
                "total_work": float(plan.allocation.w.sum()),
                "coded": plan.as_dict()}

    def _solve_lp_groups(self, unique: "OrderedDict[tuple, dict]",
                         outcomes: dict[tuple, tuple[bool, Any]]) -> None:
        """Group LP allocate requests per cluster and solve each group.

        ``lp_allocation_many`` documents bit-identity with per-pair
        ``lp_allocation`` calls, so grouping is free of float drift.  A
        group failure (solver error) fails every request in the group
        with the same exception a lone solve would have raised.
        """
        groups: OrderedDict[tuple, list[tuple]] = OrderedDict()
        for key, payload in unique.items():
            if key[0] != "allocate" or payload["protocol"] != "lp":
                continue
            params = payload["params"]
            gkey = (payload["profile"], params.tau, params.pi, params.delta,
                    payload["lifespan"],
                    payload.get("enforce_separation", True))
            groups.setdefault(gkey, []).append(key)
        for gkey, keys in groups.items():
            payloads = [unique[k] for k in keys]
            first = payloads[0]
            pairs = [(p["startup_order"], p["finishing_order"])
                     for p in payloads]
            try:
                allocations = lp_allocation_many(
                    Profile(first["profile"]), first["params"],
                    first["lifespan"], pairs,
                    enforce_separation=first.get("enforce_separation", True))
            except Exception as exc:
                for key in keys:
                    outcomes[key] = (False, exc)
                continue
            if len(keys) > 1:
                self.lp_grouped += len(keys)
            for key, allocation in zip(keys, allocations):
                outcomes[key] = (True, self._allocation_response(allocation))

    # -- the batch algorithm ------------------------------------------
    def solve(self, requests: Sequence[tuple[str, dict[str, Any]]]
              ) -> list[tuple[bool, Any]]:
        """Solve a batch; returns ``(ok, value-or-exception)`` per input.

        Input order is preserved.  Failures are isolated per *unique*
        request: one bad request cannot poison the answers of the
        others (except LP group-mates sharing its exact cluster, which
        would have failed identically on their own).
        """
        unique: OrderedDict[tuple, dict] = OrderedDict()
        keys: list[tuple] = []
        for kind, payload in requests:
            key = request_key(kind, payload)
            keys.append(key)
            if key not in unique:
                unique[key] = payload
        self.collapsed += len(requests) - len(unique)

        outcomes: dict[tuple, tuple[bool, Any]] = {}
        self._prime_x_family(unique)
        self._solve_lp_groups(unique, outcomes)
        for key, payload in unique.items():
            if key in outcomes:
                continue
            kind = key[0]
            try:
                if kind == "allocate" and payload.get("scheme") is not None:
                    outcomes[key] = (True, self._coded_response(payload))
                elif kind == "allocate":
                    allocation = fifo_allocation(
                        Profile(payload["profile"]), payload["params"],
                        payload["lifespan"],
                        startup_order=payload.get("startup_order"))
                    outcomes[key] = (True, self._allocation_response(allocation))
                else:
                    outcomes[key] = (True, self._eval_x_family(kind, payload))
            except Exception as exc:
                outcomes[key] = (False, exc)
        return [outcomes[key] for key in keys]


def solve_batch(requests: Sequence[tuple[str, dict[str, Any]]]
                ) -> list[tuple[bool, Any]]:
    """One-shot :class:`BatchSolver` run (fresh pool) — test entry point."""
    return BatchSolver().solve(requests)


class MicroBatcher:
    """The asyncio front of :class:`BatchSolver`: queue, window, fan-out.

    ``submit()`` parks a request on the queue and awaits its future;
    the drain task gathers company for ``window`` seconds (or until
    ``max_batch``), solves the batch synchronously on the loop thread,
    and resolves every future.  ``window=0`` still drains whatever is
    already queued in one batch — set ``max_batch=1`` for a strictly
    unbatched server (the benchmark's baseline).
    """

    def __init__(self, *, window: float = 0.002, max_batch: int = 64,
                 registry: Any = None, xpool_entries: int = 256,
                 tracer: Any = None) -> None:
        if window < 0:
            raise InvalidParameterError(f"window must be >= 0, got {window!r}")
        if max_batch < 1:
            raise InvalidParameterError(
                f"max_batch must be >= 1, got {max_batch!r}")
        self.window = float(window)
        self.max_batch = int(max_batch)
        self.solver = BatchSolver(xpool_entries)
        self._registry = registry
        self._tracer = tracer
        self._queue: asyncio.Queue = asyncio.Queue()
        self._task: asyncio.Task | None = None
        self.batches = 0
        self.requests = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self._drain_loop(), name="repro-service-batcher")

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        while not self._queue.empty():
            # Entry shape is (kind, payload, future[, trace_parent]);
            # index rather than unpack so a legacy 3-tuple still drains.
            future = self._queue.get_nowait()[2]
            if not future.done():
                future.set_exception(
                    ConnectionError("service stopped before the request "
                                    "was solved"))

    # -- submission ----------------------------------------------------
    async def submit(self, kind: str, payload: dict[str, Any],
                     trace_parent: str | None = None) -> Any:
        """Queue one evaluation and await its (possibly shared) answer.

        ``trace_parent`` is the submitting request's span id; the drain
        loop parents its per-batch ``svc:batch`` span onto the first
        waiter's id and lists every waiter, so a request's trace leads
        to the batch that actually solved it.
        """
        if kind not in EVAL_KINDS:
            raise InvalidParameterError(
                f"unknown evaluation kind {kind!r}; expected one of {EVAL_KINDS}")
        if self._task is None:
            raise InvalidParameterError(
                "MicroBatcher.submit() before start()")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((kind, payload, future, trace_parent))
        return await future

    # -- the drain loop ------------------------------------------------
    async def _gather(self) -> list[tuple[str, dict, asyncio.Future,
                                          str | None]]:
        """Block for the first request, then coalesce companions."""
        batch = [await self._queue.get()]
        if self.window > 0.0:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0.0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._queue.get(), timeout=remaining))
                except asyncio.TimeoutError:
                    break
        else:
            while len(batch) < self.max_batch and not self._queue.empty():
                batch.append(self._queue.get_nowait())
        return batch

    async def _drain_loop(self) -> None:
        while True:
            batch = await self._gather()
            self.batches += 1
            self.requests += len(batch)
            if self._registry is not None:
                self._registry.histogram(
                    "svc_batch_size",
                    "evaluation requests coalesced per micro-batch",
                    buckets=BATCH_SIZE_BUCKETS).observe(float(len(batch)))
            collapsed_before = self.solver.collapsed
            solve_start = time.perf_counter()
            outcomes = self.solver.solve([(k, p) for k, p, _, _ in batch])
            if self._tracer is not None:
                # One pre-timed span per solved batch (record_span, not
                # span(): the drain task must not touch the tracer's
                # thread-local span stack while request spans interleave).
                waiters = [t for _, _, _, t in batch if t is not None]
                self._tracer.record_span(
                    "svc:batch", duration=time.perf_counter() - solve_start,
                    parent_id=waiters[0] if waiters else None,
                    attrs={"size": len(batch),
                           "collapsed": self.solver.collapsed - collapsed_before,
                           "waiters": waiters})
            for (_, _, future, _), (ok, value) in zip(batch, outcomes):
                if future.done():  # deadline hit while queued: nobody waits
                    continue
                if ok:
                    future.set_result(value)
                else:
                    future.set_exception(value)
