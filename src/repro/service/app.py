"""The service application: routing, validation, deadlines, telemetry.

One :class:`ReproService` owns a listening socket, a
:class:`~repro.service.coalescer.MicroBatcher`, an
:class:`~repro.service.admission.AdmissionController`, and a
:class:`~repro.service.respcache.ResponseCache`, and exposes:

========  ============================  =====================================
method    path                          answers
========  ============================  =====================================
GET       ``/healthz``                  liveness + uptime + in-flight count
GET       ``/metrics``                  Prometheus text exposition
GET       ``/v1/experiments``           machine-readable experiment index
POST      ``/v1/experiments/{id}``      one experiment run (batch engine)
POST      ``/v1/x``                     ``X(P)``
POST      ``/v1/work``                  work rate / ``W(L;P)``
POST      ``/v1/hecr``                  the HECR ``ρ_C``
POST      ``/v1/allocate``              FIFO / LP work allocations
GET       ``/v1/obs/summary``           run-history store + SLO digest
GET       ``/v1/obs/runs``              recent stored runs/requests
GET       ``/v1/obs/runs/{id}``         one stored run with its spans
========  ============================  =====================================

Request semantics (shedding, batching, deadlines, caching) are
documented in ``docs/SERVICE.md``; the telemetry surfaces in
``docs/OBSERVABILITY.md``.  Everything is instrumented through the
observability layer: ``svc_requests_total{route,code}``,
``svc_request_seconds{route}`` (with trace-id exemplars),
``svc_inflight``, ``svc_shed_total{reason}``, ``svc_batch_size``,
``svc_slo_burn_rate{route}``, one ``svc:<route>`` span record per
request (emitted pre-timed via ``Tracer.record_span`` because asyncio
tasks interleave and must not share the tracer's thread-local span
stack), a JSON access-log line per request on the
``repro.service.access`` logger, and — unless disabled — one
run-history-store row per ``/v1/*`` request and experiment dispatch.
Every response carries ``X-Repro-Trace-Id`` / ``X-Repro-Span-Id``.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import logging
import time
from pathlib import Path
from typing import Any, Awaitable, Callable

from repro import __version__
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import (CodedSchemeError, FaultInjectionError,
                          FaultSpecError, InfeasibleScheduleError,
                          InvalidParameterError, InvalidProfileError,
                          ProtocolError, RecoveryError, SimulationError,
                          StreamError, StreamEventError)
from repro.experiments.base import experiment_index, list_experiments
from repro.obs.export import prometheus_text
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.store import RunStore, default_store_path
from repro.obs.tracing import Observation, Tracer, new_span_id, observe
from repro.service.admission import AdmissionController
from repro.service.coalescer import MicroBatcher
from repro.service.config import ServiceConfig
from repro.service.http import (HttpError, Request, read_request,
                                render_response)
from repro.service.respcache import ResponseCache

__all__ = ["ReproService", "parse_eval_payload"]

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4; charset=utf-8"

#: Library errors that mean "your request was invalid", not "we broke".
_CLIENT_ERRORS = (InvalidParameterError, InvalidProfileError, ProtocolError,
                  InfeasibleScheduleError, FaultSpecError, StreamEventError,
                  StreamError)
#: The CLI's exit-code-3 family, labelled for scripted clients.
_FAULT_ERRORS = (SimulationError, FaultInjectionError, RecoveryError)

#: The current request's span id, visible to handlers running inside
#: the request's asyncio task (set by ``_respond``).  Handlers hand it
#: to the coalescer / batch engine as the trace parent so downstream
#: spans link back to the request that caused them.
_REQ_SPAN: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_span", default=None)

_access_log = logging.getLogger("repro.service.access")


# ---------------------------------------------------------------------------
# request-payload validation
# ---------------------------------------------------------------------------

def _parse_params(obj: Any) -> ModelParams:
    """``{"tau","pi","delta"}`` (defaults from Table 1) → ModelParams."""
    if obj is None:
        return PAPER_TABLE1
    if not isinstance(obj, dict):
        raise InvalidParameterError(
            f"params must be an object with tau/pi/delta, got {type(obj).__name__}")
    unknown = set(obj) - {"tau", "pi", "delta"}
    if unknown:
        raise InvalidParameterError(
            f"unknown params fields: {', '.join(sorted(unknown))}")
    return ModelParams(tau=obj.get("tau", PAPER_TABLE1.tau),
                       pi=obj.get("pi", PAPER_TABLE1.pi),
                       delta=obj.get("delta", PAPER_TABLE1.delta))


def _parse_profile(obj: Any) -> tuple[float, ...]:
    if not isinstance(obj, (list, tuple)) or not obj:
        raise InvalidProfileError(
            "profile must be a non-empty array of positive rho values")
    profile = Profile(obj)  # validates positivity / finiteness
    return tuple(float(r) for r in profile)


def _parse_lifespan(obj: Any, *, required: bool) -> float | None:
    if obj is None:
        if required:
            raise InvalidParameterError("lifespan is required")
        return None
    if not isinstance(obj, (int, float)) or isinstance(obj, bool) \
            or obj != obj or not (0 < obj < float("inf")):
        raise InvalidParameterError(
            f"lifespan must be a positive finite number, got {obj!r}")
    return float(obj)


def _parse_order(obj: Any, n: int, name: str) -> tuple[int, ...] | None:
    if obj is None:
        return None
    if not isinstance(obj, (list, tuple)) \
            or sorted(int(i) for i in obj if isinstance(i, int)) != list(range(n)):
        raise ProtocolError(
            f"{name} must be a permutation of 0..{n - 1}, got {obj!r}")
    return tuple(int(i) for i in obj)


def _parse_scheme_body(obj: Any) -> tuple:
    """Validate a ``"scheme"`` object into its canonical hashable tuple.

    Accepted forms: ``{"kind": "replication", "r": 2}`` and
    ``{"kind": "mds", "k": 2, "n": 3}`` (``shares`` is an accepted
    alias for ``n``).  Returns ``("replication", r)`` or
    ``("mds", k, n)`` — what the coalescer keys and solves on.
    """
    from repro.coded import scheme_from_spec

    if not isinstance(obj, dict):
        raise CodedSchemeError(
            f"scheme must be an object with a 'kind', got {obj!r}")
    kind = obj.get("kind")
    extra = set(obj) - {"kind", "r", "k", "n", "shares"}
    if extra:
        raise CodedSchemeError(
            f"unknown scheme fields {sorted(extra)!r}")

    def _int_field(name: str, default: Any = None) -> int:
        value = obj.get(name, default)
        if not isinstance(value, int) or isinstance(value, bool):
            raise CodedSchemeError(
                f"scheme field {name!r} must be an integer, got {value!r}")
        return value

    if kind == "replication":
        spec = ("replication", _int_field("r", 2))
    elif kind == "mds":
        shares = obj.get("n", obj.get("shares"))
        if shares is None:
            raise CodedSchemeError("mds scheme needs 'k' and 'n'")
        spec = ("mds", _int_field("k"),
                _int_field("n" if "n" in obj else "shares"))
    else:
        raise CodedSchemeError(
            f"scheme kind must be 'replication' or 'mds', got {kind!r}")
    scheme_from_spec(spec)  # range-check (r >= 1, k <= n) before keying
    return spec


def _parse_margin(obj: Any) -> float:
    from repro.coded import DEFAULT_MARGIN

    if obj is None:
        return DEFAULT_MARGIN
    if not isinstance(obj, (int, float)) or isinstance(obj, bool) \
            or obj != obj or not (0.0 < obj <= 1.0):
        raise InvalidParameterError(
            f"margin must be a number in (0, 1], got {obj!r}")
    return float(obj)


def parse_eval_payload(kind: str, body: dict[str, Any]) -> dict[str, Any]:
    """Validate one evaluation request body into its canonical payload.

    The canonical payload is what the coalescer keys and solves on:
    profile as a float tuple, params as :class:`ModelParams`, orders as
    int tuples.  Raising here (client error → 400) keeps garbage out of
    the batch solver entirely.
    """
    if not isinstance(body, dict):
        raise InvalidParameterError("request body must be a JSON object")
    payload: dict[str, Any] = {
        "profile": _parse_profile(body.get("profile")),
        "params": _parse_params(body.get("params")),
    }
    n = len(payload["profile"])
    if kind == "work":
        payload["lifespan"] = _parse_lifespan(body.get("lifespan"),
                                              required=False)
    elif kind == "allocate":
        payload["lifespan"] = _parse_lifespan(body.get("lifespan"),
                                              required=True)
        protocol = body.get("protocol", "fifo")
        if protocol not in ("fifo", "lp"):
            raise ProtocolError(
                f"protocol must be 'fifo' or 'lp', got {protocol!r}")
        payload["protocol"] = protocol
        startup = _parse_order(body.get("startup_order"), n, "startup_order")
        finishing = _parse_order(body.get("finishing_order"), n,
                                 "finishing_order")
        scheme = body.get("scheme")
        if scheme is not None:
            if protocol != "fifo":
                raise ProtocolError(
                    "a redundancy scheme requires protocol 'fifo' (the "
                    "coded plan derives its own layout from the FIFO base)")
            if startup is not None or finishing is not None:
                raise ProtocolError(
                    "a redundancy scheme fixes its own orders; omit "
                    "startup_order/finishing_order")
            payload["scheme"] = _parse_scheme_body(scheme)
            payload["scheme_margin"] = _parse_margin(body.get("margin"))
        if protocol == "fifo":
            if finishing is not None and finishing != (startup or finishing):
                raise ProtocolError(
                    "FIFO requires finishing_order == startup_order "
                    "(omit it, or use protocol='lp')")
            payload["startup_order"] = startup
        else:
            natural = tuple(range(n))
            payload["startup_order"] = startup or natural
            payload["finishing_order"] = finishing or natural
            sep = body.get("enforce_separation", True)
            if not isinstance(sep, bool):
                raise InvalidParameterError(
                    f"enforce_separation must be a boolean, got {sep!r}")
            payload["enforce_separation"] = sep
    return payload


def _cacheable_form(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    """The canonical payload as plain JSON types (response-cache key)."""
    params = payload["params"]
    out: dict[str, Any] = {
        "kind": kind,
        "profile": list(payload["profile"]),
        "params": {"tau": params.tau, "pi": params.pi, "delta": params.delta},
    }
    for field in ("lifespan", "protocol", "enforce_separation",
                  "scheme_margin"):
        if field in payload:
            out[field] = payload[field]
    for field in ("startup_order", "finishing_order", "scheme"):
        if payload.get(field) is not None:
            out[field] = list(payload[field])
    return out


# ---------------------------------------------------------------------------
# the service
# ---------------------------------------------------------------------------

class _Response:
    """One handler's answer: status + rendered body + extras."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(self, status: int, body: bytes,
                 content_type: str = _JSON,
                 headers: dict[str, str] | None = None) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        self.headers = headers or {}


def _json_response(status: int, payload: Any,
                   headers: dict[str, str] | None = None) -> _Response:
    body = json.dumps(payload, separators=(",", ":"),
                      allow_nan=False).encode("utf-8") + b"\n"
    return _Response(status, body, headers=headers)


def _error_response(status: int, message: str,
                    headers: dict[str, str] | None = None,
                    **extra: Any) -> _Response:
    return _json_response(status, {"error": message, **extra}, headers=headers)


class ReproService:
    """The asyncio HTTP server around the library's hot queries.

    Parameters
    ----------
    config:
        A :class:`~repro.service.config.ServiceConfig` (defaults apply).
    registry:
        Metrics destination; defaults to the process-global registry so
        ``GET /metrics`` and the CLI share one view.
    tracer:
        Optional :class:`~repro.obs.tracing.Tracer`; when present every
        request emits one pre-timed ``svc:<route>`` span record.
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = registry if registry is not None else default_registry()
        # An injected tracer keeps span records (tests, serve --trace);
        # otherwise a record-dropping tracer still supplies the trace id
        # and span ids that headers, exemplars and store rows carry.
        self._external_tracer = tracer is not None
        self.tracer = tracer if tracer is not None else Tracer(
            keep_records=False)
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            rate=self.config.rate, burst=self.config.burst)
        self.shared = None
        if (self.config.shared_cache_dir is not None
                and not self.config.no_shared_cache):
            from repro.batch.shared_cache import SharedCache
            self.shared = SharedCache(self.config.shared_cache_dir)
        self.cache = ResponseCache(self.config.cache_entries,
                                   self.config.cache_ttl,
                                   shared=self.shared)
        self.batcher = MicroBatcher(window=self.config.batch_window,
                                    max_batch=self.config.max_batch,
                                    registry=self.registry,
                                    tracer=self.tracer)
        self._server: asyncio.AbstractServer | None = None
        self._started_at = 0.0
        self._result_cache = None
        self.store: RunStore | None = None
        self._draining = False
        self._active_requests = 0
        self._writers: set[asyncio.StreamWriter] = set()
        #: Per-route [bad, total] request counts behind the SLO gauges.
        self._slo_counts: dict[str, list[int]] = {}
        #: The one live stream session (docs/STREAM.md): created lazily
        #: by the first POST /v1/stream/events, serialised by the lock —
        #: event-time windowing is stateful and order-sensitive.
        self._stream = None
        self._stream_lock = asyncio.Lock()
        self._routes: dict[tuple[str, str], tuple[
            Callable[[Request], Awaitable[_Response]], bool]] = {
            ("GET", "/healthz"): (self._handle_healthz, False),
            ("GET", "/metrics"): (self._handle_metrics, False),
            ("GET", "/v1/experiments"): (self._handle_experiment_index, False),
            ("GET", "/v1/obs/summary"): (self._handle_obs_summary, False),
            ("GET", "/v1/obs/runs"): (self._handle_obs_runs, False),
            ("POST", "/v1/x"): (self._make_eval_handler("x"), True),
            ("POST", "/v1/work"): (self._make_eval_handler("work"), True),
            ("POST", "/v1/hecr"): (self._make_eval_handler("hecr"), True),
            ("POST", "/v1/allocate"): (self._make_eval_handler("allocate"),
                                       True),
            ("POST", "/v1/stream/events"): (self._handle_stream_events,
                                            True),
            ("GET", "/v1/stream/state"): (self._handle_stream_state, False),
        }

    # -- lifecycle -----------------------------------------------------
    async def start(self, sock: Any = None) -> None:
        """Bind the socket and start the coalescer's drain task.

        ``sock`` optionally supplies an already-bound (``SO_REUSEPORT``)
        or already-listening (inherited) socket — how supervisor workers
        share one port; ``None`` binds ``config.host:config.port``.
        """
        if self.config.engine is not None:
            import os

            from repro.simulation.runner import set_default_engine
            # Mirror the CLI's run --engine contract: the setter covers
            # in-process evaluation, the environment variable covers
            # experiment-dispatch worker processes.
            set_default_engine(self.config.engine)
            os.environ["REPRO_SIM_ENGINE"] = self.config.engine
        else:
            from repro.simulation.runner import default_engine
            default_engine()  # surface a bad $REPRO_SIM_ENGINE at boot
        if not self.config.no_result_cache:
            from repro.batch import ResultCache, default_cache_dir
            self._result_cache = ResultCache(
                self.config.result_cache_dir or default_cache_dir())
        if not self.config.no_store:
            path = (Path(self.config.store_dir) / "runs.sqlite3"
                    if self.config.store_dir else default_store_path())
            try:
                self.store = RunStore(path)
            except Exception as exc:
                # Telemetry must never keep the service from serving.
                logging.getLogger("repro.service").warning(
                    "run-history store unavailable (%s); continuing "
                    "without persistence", exc)
                self.store = None
        self.batcher.start()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, host=self.config.host,
                port=self.config.port)
        self._started_at = time.monotonic()

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the OS's choice)."""
        if self._server is None or not self._server.sockets:
            raise InvalidParameterError("service is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self.config.host

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Drain and shut down: the clean-exit path for SIGTERM/SIGINT."""
        await self.drain(self.config.drain_timeout)
        async with self._stream_lock:
            if self._stream is not None:
                # Flush the live stream session so its run row finalises
                # (status "ok" + recorded events) instead of dangling.
                self._stream.finish()
                self._stream = None
        if self.store is not None:
            self.store.close()
            self.store = None

    async def drain(self, timeout: float) -> None:
        """Stop accepting, finish in-flight work, then close connections.

        The sequence a load balancer expects: the listening socket
        closes first (no new connections), requests already being
        processed get up to ``timeout`` seconds to answer, and requests
        arriving on *existing* keep-alive connections during the drain
        are answered ``503`` + ``Retry-After`` instead of a reset.
        Idempotent; ``stop()`` calls it with the configured timeout.
        """
        self._draining = True
        server, self._server = self._server, None
        if server is not None:
            server.close()
        deadline = time.monotonic() + timeout
        while self._active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.005)
        # Whatever is still connected now is either idle keep-alive or
        # past its drain budget: close the transports so the per-
        # connection tasks unblock from read_request and exit.
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 - already-dead transports
                pass
        if server is not None:
            await server.wait_closed()
        await self.batcher.stop()

    # -- connection handling -------------------------------------------
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_header_bytes=self.config.max_header_bytes,
                        max_body_bytes=self.config.max_body_bytes)
                except HttpError as exc:
                    self._record(f"(malformed:{exc.status})", exc.status, 0.0)
                    writer.write(render_response(
                        exc.status,
                        json.dumps({"error": exc.message}).encode() + b"\n",
                        keep_alive=exc.recoverable))
                    await writer.drain()
                    if not exc.recoverable:
                        break
                    continue
                if request is None:
                    break
                if self._draining:
                    # A keep-alive connection outlived the listening
                    # socket; tell the client to retry elsewhere rather
                    # than resetting its connection mid-request.
                    self.registry.counter(
                        "svc_shed_total",
                        "requests shed by admission control, by reason"
                    ).inc(reason="draining")
                    writer.write(render_response(
                        503, json.dumps({"error": "shed: draining",
                                         "retry_after": 1.0}).encode() + b"\n",
                        extra_headers={"Retry-After": "1"},
                        keep_alive=False))
                    await writer.drain()
                    break
                self._active_requests += 1
                try:
                    response = await self._respond(request)
                finally:
                    self._active_requests -= 1
                writer.write(render_response(
                    response.status, response.body,
                    content_type=response.content_type,
                    extra_headers=response.headers,
                    keep_alive=request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    def _match(self, request: Request) -> tuple[
            str, Callable[[Request], Awaitable[_Response]] | None, bool]:
        """Resolve a request to ``(route_label, handler, sheddable)``."""
        exact = self._routes.get((request.method, request.path))
        if exact is not None:
            return request.path, exact[0], exact[1]
        prefix = "/v1/obs/runs/"
        if request.path.startswith(prefix) and len(request.path) > len(prefix):
            if request.method == "GET":
                return "/v1/obs/runs/{id}", self._handle_obs_run, False
            return "/v1/obs/runs/{id}", None, False  # 405
        prefix = "/v1/experiments/"
        if request.path.startswith(prefix) and len(request.path) > len(prefix):
            if request.method == "POST":
                return "/v1/experiments/{id}", self._handle_experiment_run, True
            return "/v1/experiments/{id}", None, False  # 405
        if any(path == request.path for _, path in self._routes):
            return request.path, None, False  # 405
        return "(unmatched)", None, False  # 404

    async def _respond(self, request: Request) -> _Response:
        route, handler, sheddable = self._match(request)
        start = time.perf_counter()
        span_id = new_span_id()
        token = _REQ_SPAN.set(span_id)
        try:
            return await self._respond_traced(request, route, handler,
                                              sheddable, start, span_id)
        finally:
            _REQ_SPAN.reset(token)

    async def _respond_traced(self, request: Request, route: str,
                              handler: Callable[[Request],
                                                Awaitable[_Response]] | None,
                              sheddable: bool, start: float,
                              span_id: str) -> _Response:
        if handler is None:
            status = 405 if route != "(unmatched)" else 404
            message = ("method not allowed" if status == 405 else
                       f"no route for {request.path!r}")
            response = _error_response(status, message)
            self._finish(route, response, start, request.method, span_id)
            return response

        if sheddable:
            decision = self.admission.admit()
            if not decision:
                self.registry.counter(
                    "svc_shed_total",
                    "requests shed by admission control, by reason"
                ).inc(reason=decision.reason)
                response = _error_response(
                    decision.status, f"shed: {decision.reason}",
                    headers={"Retry-After": decision.retry_after_header},
                    retry_after=decision.retry_after)
                self._finish(route, response, start, request.method, span_id,
                             shed=decision.reason)
                return response
            self.registry.gauge(
                "svc_inflight", "admitted requests currently in flight"
            ).set(self.admission.inflight)

        try:
            response = await self._run_with_deadline(handler, request)
        except asyncio.TimeoutError:
            response = _error_response(504, "deadline exceeded")
        except _CLIENT_ERRORS as exc:
            response = _error_response(400, f"{type(exc).__name__}: {exc}")
        except _FAULT_ERRORS as exc:
            response = _error_response(500, f"{type(exc).__name__}: {exc}",
                                       family="fault")
        except Exception as exc:  # noqa: BLE001 - the server must answer
            response = _error_response(500, f"{type(exc).__name__}: {exc}")
        finally:
            if sheddable:
                self.admission.release()
                self.registry.gauge(
                    "svc_inflight", "admitted requests currently in flight"
                ).set(self.admission.inflight)
        self._finish(route, response, start, request.method, span_id)
        return response

    def _finish(self, route: str, response: _Response, start: float,
                method: str, span_id: str, shed: str | None = None) -> None:
        """Stamp trace headers and record one finished request."""
        response.headers.setdefault("X-Repro-Trace-Id", self.tracer.trace_id)
        response.headers.setdefault("X-Repro-Span-Id", span_id)
        self._record(route, response.status, time.perf_counter() - start,
                     method=method, span_id=span_id, shed=shed)

    async def _run_with_deadline(
            self, handler: Callable[[Request], Awaitable[_Response]],
            request: Request) -> _Response:
        deadline_ms = request.header_float("x-repro-deadline-ms")
        deadline = (deadline_ms / 1000.0 if deadline_ms is not None
                    else self.config.deadline)
        if deadline and deadline > 0:
            return await asyncio.wait_for(handler(request), timeout=deadline)
        return await handler(request)

    def _record(self, route: str, code: int, seconds: float,
                method: str = "GET", *, span_id: str | None = None,
                shed: str | None = None) -> None:
        self.registry.counter(
            "svc_requests_total", "HTTP requests served, by route and code"
        ).inc(route=route, code=code)
        exemplar = ({"trace_id": self.tracer.trace_id, "span_id": span_id}
                    if span_id is not None
                    else {"trace_id": self.tracer.trace_id})
        self.registry.timer(
            "svc_request_seconds", "request wall time, by route"
        ).observe(seconds, exemplar=exemplar, route=route)
        # Pre-timed record via record_span(): concurrent asyncio tasks
        # must not push/pop the tracer's thread-local span stack.
        self.tracer.record_span(
            f"svc:{route}", duration=seconds, span_id=span_id,
            attrs={"code": code, "method": method})
        if self.config.slo_latency > 0:
            counts = self._slo_counts.setdefault(route, [0, 0])
            counts[1] += 1
            if code >= 500 or seconds > self.config.slo_latency:
                counts[0] += 1
            self.registry.gauge(
                "svc_slo_burn_rate",
                "error-budget burn rate, by route (bad-request fraction "
                "over the budget 1 - slo_objective; > 1 is out of SLO)"
            ).set(
                (counts[0] / counts[1]) / (1.0 - self.config.slo_objective),
                route=route)
        if _access_log.isEnabledFor(logging.INFO):
            _access_log.info("%s", json.dumps({
                "route": route, "method": method, "status": code,
                "latency_ms": round(seconds * 1000.0, 3),
                "trace_id": self.tracer.trace_id, "span_id": span_id,
                "shed": shed,
            }, separators=(",", ":")))
        if (self.store is not None and route.startswith("/v1/")
                and not route.startswith("/v1/obs")):
            self.store.record_run(
                kind="request", label=route,
                trace_id=self.tracer.trace_id, status=str(code),
                wall_seconds=seconds,
                extra={"method": method, "span_id": span_id, "shed": shed})

    # -- handlers ------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> _Response:
        payload: dict[str, Any] = {
            "status": "ok", "version": __version__,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "inflight": self.admission.inflight,
        }
        if self.config.worker_index is not None:
            payload["worker"] = self.config.worker_index
        return _json_response(200, payload)

    async def _handle_metrics(self, request: Request) -> _Response:
        text = prometheus_text(self.registry, exemplars=True)
        return _Response(200, text.encode("utf-8"), content_type=_PROM)

    async def _handle_experiment_index(self, request: Request) -> _Response:
        return _json_response(200, {"experiments": experiment_index()})

    @staticmethod
    def _json_body(request: Request) -> dict[str, Any]:
        if not request.body:
            return {}
        try:
            body = json.loads(request.body)
        except ValueError as exc:
            raise InvalidParameterError(f"invalid JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise InvalidParameterError("request body must be a JSON object")
        return body

    def _make_eval_handler(
            self, kind: str) -> Callable[[Request], Awaitable[_Response]]:
        async def handle(request: Request) -> _Response:
            payload = parse_eval_payload(kind, self._json_body(request))
            cache_key = None
            if self.cache.enabled:
                cache_key = self.cache.key(f"/v1/{kind}",
                                           _cacheable_form(kind, payload))
                body = self.cache.get(cache_key)
                if body is not None:
                    self.registry.counter(
                        "svc_response_cache_hits_total",
                        "evaluation responses served from the TTL cache"
                    ).inc(kind=kind)
                    if self.cache.last_tier == "shared":
                        self.registry.counter(
                            "svc_shared_cache_hits_total",
                            "responses served from the cross-worker "
                            "shared cache tier"
                        ).inc(kind=kind)
                    return _Response(200, body)
            result = await self.batcher.submit(kind, payload,
                                               trace_parent=_REQ_SPAN.get())
            response = _json_response(200, result)
            if cache_key is not None:
                self.cache.put(cache_key, response.body)
            return response
        return handle

    async def _handle_experiment_run(self, request: Request) -> _Response:
        experiment_id = request.path.rsplit("/", 1)[-1]
        if experiment_id not in list_experiments():
            return _error_response(
                404, f"unknown experiment {experiment_id!r}",
                known=list_experiments())
        body = self._json_body(request)
        kwargs = body.get("kwargs", {})
        if not isinstance(kwargs, dict):
            raise InvalidParameterError("kwargs must be a JSON object")
        from repro.batch import cache_key, run_batch
        from repro.io import result_to_dict

        trace_parent = _REQ_SPAN.get()
        dispatch_key = cache_key(experiment_id, dict(kwargs))

        def run() -> dict[str, Any]:
            # The executor thread has no ambient observation; install
            # one so the batch engine folds worker telemetry into this
            # service's registry.  The tracer rides along only when one
            # was injected (serve --trace / tests): an ambient tracer
            # switches auto-engine runs to the event engine, which the
            # untraced server must not do.
            observation = Observation(
                tracer=self.tracer if self._external_tracer else None,
                registry=self.registry)
            with observe(observation):
                batch = run_batch([experiment_id],
                                  kwargs_by_id={experiment_id: dict(kwargs)},
                                  jobs=self.config.jobs,
                                  cache=self._result_cache,
                                  trace_parent=trace_parent)
            item = batch.items[0]
            return {"cached": item.cached, "shards": item.shards,
                    "wall_seconds": item.wall_seconds, "error": item.error,
                    "result": (result_to_dict(item.result)
                               if item.error is None else None)}

        def dispatch() -> tuple[dict[str, Any], str]:
            # Single flight across workers: N processes receiving this
            # exact dispatch concurrently compute it once; the rest get
            # the leader's published document.  Error documents are
            # never published — each worker sees its own failure.
            if self.shared is None:
                return run(), "local"
            return self.shared.get_or_compute(
                "dispatch-" + dispatch_key, run,
                publishable=lambda doc: doc["error"] is None)

        item, outcome = await asyncio.get_running_loop().run_in_executor(
            None, dispatch)
        self.registry.counter(
            "svc_dispatch_single_flight_total",
            "experiment dispatches by single-flight outcome "
            "(leader computed / follower awaited / hit / local)"
        ).inc(experiment=experiment_id, outcome=outcome)
        if self.store is not None:
            self.store.record_run(
                kind="experiment", label=experiment_id,
                trace_id=self.tracer.trace_id,
                cache_key=dispatch_key,
                engine=self.config.engine,
                status="error" if item["error"] is not None else "ok",
                wall_seconds=item["wall_seconds"],
                extra={"cached": item["cached"], "shards": item["shards"],
                       "jobs": self.config.jobs, "span_id": trace_parent,
                       "dedup": outcome, "error": item["error"]})
        if item["error"] is not None:
            family = item["error"].split(":", 1)[0]
            status = 400 if family in (
                "InvalidParameterError", "InvalidProfileError",
                "FaultSpecError", "ProtocolError") else 500
            return _error_response(status, item["error"],
                                   experiment=experiment_id)
        return _json_response(200, {
            "experiment": experiment_id,
            "cached": item["cached"],
            "wall_seconds": item["wall_seconds"],
            "dedup": outcome,
            "result": item["result"],
        })

    # -- stream endpoints (docs/STREAM.md) ------------------------------
    def _new_stream_processor(self, body: dict[str, Any]):
        """Build the session processor from the creating request's body.

        Session knobs (``window``, ``params``, ``what_if``,
        ``calibrate``, ``forget``) are read only here — on the first
        POST, or one carrying ``reset``; later posts just feed events.
        """
        from repro.stream import StreamProcessor

        window = body.get("window", 10.0)
        if isinstance(window, bool) or not isinstance(window, (int, float)):
            raise InvalidParameterError(
                f"window must be a positive number, got {window!r}")
        calibrate = body.get("calibrate", True)
        if not isinstance(calibrate, bool):
            raise InvalidParameterError(
                f"calibrate must be a boolean, got {calibrate!r}")
        what_if = body.get("what_if")
        if what_if is not None and not isinstance(what_if, (list, tuple)):
            raise InvalidParameterError(
                "what_if must be an array of positive rho values")
        forget = body.get("forget", 0.35)
        if isinstance(forget, bool) or not isinstance(forget, (int, float)):
            raise InvalidParameterError(
                f"forget must be a number in (0, 1], got {forget!r}")
        return StreamProcessor(
            float(window), params=_parse_params(body.get("params")),
            calibrate=calibrate, what_if=what_if, forget=float(forget),
            registry=self.registry, store=self.store, label="service")

    async def _handle_stream_events(self, request: Request) -> _Response:
        from repro.stream import event_from_dict

        body = self._json_body(request)
        events = body.get("events", [])
        if not isinstance(events, list):
            raise InvalidParameterError(
                "events must be a JSON array of event objects")
        async with self._stream_lock:
            if body.get("reset") and self._stream is not None:
                self._stream.finish()
                self._stream = None
            if self._stream is None:
                self._stream = self._new_stream_processor(body)
            processor = self._stream
            records: list[dict] = []
            for index, obj in enumerate(events):
                if not isinstance(obj, dict):
                    raise StreamEventError(
                        f"event {index} must be a JSON object, "
                        f"got {type(obj).__name__}")
                records.extend(processor.feed(event_from_dict(obj)))
            if body.get("finish"):
                records.extend(processor.finish())
                self._stream = None
            state = processor.state_view()
        self.registry.counter(
            "svc_stream_events_total",
            "events accepted by POST /v1/stream/events").inc(len(events))
        return _json_response(200, {"accepted": len(events),
                                    "windows": records, "state": state})

    async def _handle_stream_state(self, request: Request) -> _Response:
        async with self._stream_lock:
            if self._stream is None:
                return _json_response(200, {"active": False, "state": None})
            return _json_response(200, {"active": True,
                                        "state": self._stream.state_view()})

    # -- observability endpoints ---------------------------------------
    def _store_or_none(self) -> RunStore | None:
        return self.store

    async def _handle_obs_summary(self, request: Request) -> _Response:
        store = self._store_or_none()
        slo = {
            route: {"requests": counts[1], "bad": counts[0],
                    "burn_rate": round((counts[0] / counts[1])
                                       / (1.0 - self.config.slo_objective), 6)}
            for route, counts in sorted(self._slo_counts.items()) if counts[1]}
        return _json_response(200, {
            "store": store.summary() if store is not None else None,
            "store_enabled": store is not None,
            "trace_id": self.tracer.trace_id,
            "slo": {"latency_seconds": self.config.slo_latency,
                    "objective": self.config.slo_objective, "routes": slo},
        })

    async def _handle_obs_runs(self, request: Request) -> _Response:
        store = self._store_or_none()
        if store is None:
            return _error_response(503, "run-history store is disabled")
        return _json_response(200, {"runs": store.runs(limit=50)})

    async def _handle_obs_run(self, request: Request) -> _Response:
        store = self._store_or_none()
        if store is None:
            return _error_response(503, "run-history store is disabled")
        run_id = request.path.rsplit("/", 1)[-1]
        run = store.get_run(run_id)
        if run is None:
            return _error_response(404, f"no stored run matches {run_id!r}")
        return _json_response(200, {
            "run": run, "spans": store.spans(run["run_id"])})
