"""Event primitives for the discrete-event simulator.

A tiny, dependency-free event core: :class:`Event` couples a firing time
with a callback, and :class:`EventQueue` is a stable priority queue
(ties broken by insertion order, so same-time events fire
deterministically in the order they were scheduled — important for
reproducible traces).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled simulator event.

    Ordering is by ``(time, seq)``; ``seq`` is a monotonically increasing
    tie-breaker assigned by the queue.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A stable min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Callable[[], None], label: str = "") -> Event:
        """Schedule ``action`` at absolute ``time``; returns the event handle."""
        if time < 0 or time != time:  # NaN check
            raise SimulationError(f"cannot schedule event at time {time!r}")
        event = Event(time=time, seq=next(self._counter), action=action, label=label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest non-cancelled event.

        Raises
        ------
        SimulationError
            If the queue is empty (callers should check :meth:`empty`).
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        raise SimulationError("event queue is empty")

    @property
    def size(self) -> int:
        """Heap size in O(1): counts cancelled-but-unreaped events too.

        The engine samples this on every pop for queue-depth telemetry,
        so it must stay constant-time — use :func:`len` for the exact
        live-event count.
        """
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """True when no live (non-cancelled) events remain."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return not self._heap

    @property
    def next_time(self) -> float | None:
        """Firing time of the earliest live event, or None if empty."""
        if self.empty:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventQueue(len={len(self)}, next={self.next_time})"


# re-export Any for typing convenience of submodules
_ = Any
