"""Post-hoc analysis of simulation results: utilization and idle time.

The runner records per-worker milestones; this module turns them into
the operational statistics an operator asks for:

* per-resource **utilization** (server, channel, each worker);
* per-worker **idle anatomy**: waiting for work vs waiting for the
  channel after packaging (the FIFO result-slot wait);
* a chronological **event log** for debugging and teaching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.runner import SimulationResult

__all__ = ["UtilizationSummary", "WorkerIdleBreakdown", "utilization_summary",
           "event_log"]


@dataclass(frozen=True, slots=True)
class WorkerIdleBreakdown:
    """Where one worker's lifespan went."""

    computer: int
    busy: float            # unpackage + compute + package
    waiting_for_work: float   # from t=0 until its package arrived
    waiting_for_slot: float   # from packaging done to result-transit start
    returning: float       # result message in transit
    after_done: float      # from result completion to the lifespan's end

    @property
    def total(self) -> float:
        """Sum of all phases — the lifespan, for a completed worker."""
        return (self.busy + self.waiting_for_work + self.waiting_for_slot
                + self.returning + self.after_done)

    @property
    def busy_fraction(self) -> float:
        return self.busy / self.total if self.total > 0 else 0.0


@dataclass(frozen=True)
class UtilizationSummary:
    """Cluster-wide utilization of one simulated round."""

    lifespan: float
    network_utilization: float
    server_utilization: float
    worker_breakdowns: tuple[WorkerIdleBreakdown, ...]

    @property
    def mean_worker_busy_fraction(self) -> float:
        if not self.worker_breakdowns:
            return 0.0
        return float(np.mean([w.busy_fraction for w in self.worker_breakdowns]))

    def least_utilized_worker(self) -> int:
        """Profile index of the worker with the smallest busy fraction."""
        breakdowns = self.worker_breakdowns
        return min(breakdowns, key=lambda w: w.busy_fraction).computer


def utilization_summary(result: SimulationResult) -> UtilizationSummary:
    """Compute the utilization statistics of a finished simulation."""
    alloc = result.allocation
    params = alloc.params
    L = alloc.lifespan

    server_busy = float(np.sum(params.pi * alloc.w))
    breakdowns = []
    for rec in result.records:
        if rec.work == 0.0 or np.isnan(rec.arrived):
            continue
        busy = (rec.busy_end - rec.arrived) if not np.isnan(rec.busy_end) else 0.0
        waiting_for_work = rec.arrived
        if not np.isnan(rec.result_start) and not np.isnan(rec.busy_end):
            waiting_for_slot = rec.result_start - rec.busy_end
            returning = rec.result_end - rec.result_start
            after_done = max(0.0, L - rec.result_end)
        else:
            waiting_for_slot = 0.0
            returning = 0.0
            after_done = 0.0
        breakdowns.append(WorkerIdleBreakdown(
            computer=rec.computer,
            busy=busy,
            waiting_for_work=waiting_for_work,
            waiting_for_slot=waiting_for_slot,
            returning=returning,
            after_done=after_done,
        ))
    return UtilizationSummary(
        lifespan=L,
        network_utilization=result.network_busy_time / L,
        server_utilization=server_busy / L,
        worker_breakdowns=tuple(breakdowns),
    )


def event_log(result: SimulationResult) -> list[str]:
    """A chronological, human-readable log of the round's milestones."""
    events: list[tuple[float, str]] = []
    for rec in result.records:
        if rec.work == 0.0:
            continue
        if not np.isnan(rec.send_prep_start):
            events.append((rec.send_prep_start,
                           f"server starts packaging {rec.work:.4g} units for C{rec.computer + 1}"))
        if not np.isnan(rec.arrived):
            events.append((rec.arrived, f"C{rec.computer + 1} receives its work"))
        if not np.isnan(rec.busy_end):
            events.append((rec.busy_end, f"C{rec.computer + 1} finishes computing/packaging"))
        if not np.isnan(rec.result_end) and rec.result_end > rec.busy_end:
            events.append((rec.result_start, f"C{rec.computer + 1} begins returning results"))
            events.append((rec.result_end, f"C{rec.computer + 1}'s results arrive at the server"))
    events.sort(key=lambda pair: pair[0])
    return [f"t={t:12.6g}  {text}" for t, text in events]
