"""Server and worker state machines for the CEP simulation.

These entities execute a :class:`~repro.protocols.base.WorkAllocation`
*operationally*: the server packages and sends work packages seriatim in
startup order, each worker unpackages/computes/packages (one busy period
of ``B·ρ·w`` under the balanced-architecture assumption), and results are
returned in finishing order under one of two policies:

``"late"``
    Results occupy the precomputed contiguous slots at the end of the
    lifespan (the paper's Fig.-2 layout).  A worker that misses its slot
    delays the whole tail — visible as lost work, exactly what happens
    when an allocation over-commits.
``"greedy"``
    Results are sent as early as the finishing order and the channel
    allow (a work-conserving executor).  Same completed work for a
    feasible allocation, earlier completion times.

The entities deliberately *recompute nothing* from the closed forms: all
timing emerges from event ordering, so agreement between simulated and
analytic work production is a genuine check of Theorem 2.

Faults
------
Each worker optionally carries a
:class:`~repro.faults.models.FaultTimeline`: permanent crashes kill it
mid-action exactly like the original single ``failure_time``; transient
outages pause its progress; degraded-speed windows dilate its busy
period.  Channel faults live in the network — the entities only have to
cope with a transit that comes back ``delivered=False`` (a work quantum
that never reaches its worker, or a result the server never sees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.faults.models import FaultTimeline
from repro.protocols.base import WorkAllocation
from repro.simulation.engine import Simulator
from repro.simulation.network import SingleChannelNetwork

__all__ = ["WorkerRecord", "ResultSequencer", "Server", "Worker"]


@dataclass
class WorkerRecord:
    """Observed per-computer milestones (NaN until they happen)."""

    computer: int
    work: float
    send_prep_start: float = float("nan")
    arrived: float = float("nan")
    busy_end: float = float("nan")
    result_start: float = float("nan")
    result_end: float = float("nan")

    @property
    def completed(self) -> bool:
        """Whether the result round-trip finished (or, for δ=0, compute did)."""
        return not np.isnan(self.result_end)


class ResultSequencer:
    """Grants result transmissions in finishing order.

    Workers announce readiness; the sequencer reserves the channel for
    worker Φ(k) only once workers Φ(1)…Φ(k−1) have been granted, keeping
    the finishing order a *protocol* property rather than a race.
    """

    def __init__(self, sim: Simulator, network: SingleChannelNetwork,
                 finishing_order: tuple[int, ...],
                 slot_starts: dict[int, float] | None,
                 skip_failed: bool = False) -> None:
        self._sim = sim
        self._network = network
        self._order = [c for c in finishing_order]
        self._slot_starts = slot_starts  # None => greedy policy
        self._skip_failed = skip_failed
        self._ready: dict[int, float] = {}
        self._failed: set[int] = set()
        self._next = 0
        self._grants: dict[int, tuple[float, float]] = {}
        self._callbacks: dict[int, callable] = {}
        #: Results whose transmission exhausted its retransmit budget.
        self.results_lost = 0

    def skip(self, computer: int) -> None:
        """Remove a zero-work computer from the sequence."""
        self._order.remove(computer)

    def announce(self, computer: int, ready_time: float,
                 duration: float, on_complete) -> None:
        """A worker's results are packaged and ready for transmission."""
        self._ready[computer] = ready_time
        self._callbacks[computer] = (duration, on_complete)
        self._advance()

    def mark_failed(self, computer: int) -> None:
        """A worker will never deliver (it died, or its work never arrived).

        Under the ``skip_failed`` recovery heuristic the sequencer steps
        past the dead worker so later results can flow; under the strict
        FIFO protocol (the default) the finishing order is a contract and
        everything queued behind the failure stalls — the fragility this
        feature exists to expose.
        """
        self._failed.add(computer)
        if self._skip_failed:
            self._advance()

    def _advance(self) -> None:
        while self._next < len(self._order):
            c = self._order[self._next]
            if c in self._failed and c not in self._ready:
                if not self._skip_failed:
                    return  # strict protocol: the tail is stuck
                self._next += 1
                continue
            if c not in self._ready:
                return  # must wait for the next-in-Φ worker
            duration, on_complete = self._callbacks[c]
            earliest = self._ready[c]
            if self._slot_starts is not None:
                earliest = max(earliest, self._slot_starts[c])
            # The grant decision is being made *now*: a worker unblocked
            # late (its Φ-predecessor failed after this one became
            # ready) must not book the channel in the simulator's past.
            earliest = max(earliest, self._sim.now)
            transit = self._network.reserve("result", c, earliest, duration)
            if not transit.delivered:
                # The channel ate the result: the server never saw Φ(k).
                self._failed.add(c)
                del self._ready[c]
                self.results_lost += 1
                if not self._skip_failed:
                    return  # strict protocol: the contract is broken
                self._next += 1
                continue
            self._grants[c] = (transit.start, transit.end)
            self._next += 1
            self._sim.schedule_at(transit.end,
                                  lambda cb=on_complete, t=transit: cb(t),
                                  label=f"result-arrive C{c}")


class Worker:
    """One cluster computer: unpackage, compute, package, transmit.

    The optional *fault timeline* models everything that can go wrong on
    the worker itself: a permanent crash freezes it mid-action (work on
    its bench is lost), a transient outage pauses its progress, and a
    degraded-speed window dilates its busy period.  The plain
    ``failure_time`` argument survives as sugar for a crash-only
    timeline.
    """

    def __init__(self, sim: Simulator, record: WorkerRecord, busy_time: float,
                 result_duration: float, sequencer: ResultSequencer | None,
                 failure_time: float | None = None,
                 fault: FaultTimeline | None = None) -> None:
        if failure_time is not None:
            crash = failure_time if fault is None else (
                failure_time if fault.crash_at is None
                else min(failure_time, fault.crash_at))
            fault = FaultTimeline(crash_at=crash,
                                  outages=fault.outages if fault else (),
                                  slowdowns=fault.slowdowns if fault else ())
        self._sim = sim
        self.record = record
        self._busy_time = busy_time
        self._result_duration = result_duration
        self._sequencer = sequencer
        self._fault = fault if fault is not None and not fault.is_benign else None
        self.failed = False

    def receive(self, arrival_time: float) -> None:
        """Package arrived: start the busy period (unless already dead)."""
        fault = self._fault
        if fault is None:
            busy_end = arrival_time + self._busy_time
        else:
            if fault.crashes_by(arrival_time):
                self._die()
                return
            busy_end = fault.completion_time(arrival_time, self._busy_time)
            if fault.crashes_by(busy_end):
                # Dies mid-computation: the quantum is lost.
                self.record.arrived = arrival_time
                self._sim.schedule_at(fault.crash_at, self._die,
                                      label=f"failure C{self.record.computer}")
                return
        self.record.arrived = arrival_time
        self._sim.schedule_at(busy_end, self._finish_busy,
                              label=f"busy-end C{self.record.computer}")

    def starve(self) -> None:
        """The work package never arrived (lost in the channel).

        The worker is alive but has nothing to compute; the sequencer
        must not wait for it.
        """
        if self._sequencer is not None:
            self._sequencer.mark_failed(self.record.computer)

    def _die(self) -> None:
        self.failed = True
        if self._sequencer is not None:
            self._sequencer.mark_failed(self.record.computer)

    def _finish_busy(self) -> None:
        self.record.busy_end = self._sim.now
        if self._sequencer is None:
            # δ = 0: no result message; completion is the busy end itself.
            self.record.result_start = self._sim.now
            self.record.result_end = self._sim.now
            return
        self._sequencer.announce(self.record.computer, self._sim.now,
                                 self._result_duration, self._result_arrived)

    def _result_arrived(self, transit) -> None:
        # The message was already in the channel's custody: it completes
        # even if the worker died after handing it off.
        self.record.result_start = transit.start
        self.record.result_end = transit.end


class Server:
    """The server C₀: packages and sends work packages seriatim."""

    def __init__(self, sim: Simulator, network: SingleChannelNetwork,
                 allocation: WorkAllocation,
                 workers: dict[int, Worker]) -> None:
        self._sim = sim
        self._network = network
        self._alloc = allocation
        self._workers = workers
        self._pending = [c for c in allocation.startup_order
                         if allocation.w[c] > 0.0]
        self._index = 0

    def start(self) -> None:
        """Begin the send chain at time zero."""
        if self._sim.now != 0.0:
            raise SimulationError("server must start at time 0")
        self._send_next()

    def _send_next(self) -> None:
        if self._index >= len(self._pending):
            return
        c = self._pending[self._index]
        self._index += 1
        wc = float(self._alloc.w[c])
        pi, tau = self._alloc.params.pi, self._alloc.params.tau
        worker = self._workers[c]
        worker.record.send_prep_start = self._sim.now
        prep_end = self._sim.now + pi * wc
        transit = self._network.reserve("work", c, prep_end, tau * wc)
        if transit.delivered:
            self._sim.schedule_at(transit.end,
                                  lambda w=worker, t=transit.end: w.receive(t),
                                  label=f"arrive C{c}")
        else:
            # The channel lost the package past its retransmit budget:
            # the quantum never reaches its worker.
            self._sim.schedule_at(transit.end,
                                  lambda w=worker: w.starve(),
                                  label=f"work-lost C{c}")
        # Seriatim: next package's preparation begins the moment this
        # package has fully left the server+channel pipeline.
        self._sim.schedule_at(transit.end, self._send_next,
                              label=f"next-send after C{c}")
