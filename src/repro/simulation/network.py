"""The single-message-in-transit network resource.

The model's cardinal communication constraint (paper §1.2) is that *at
most one intercomputer message is in transit at a time*.
:class:`SingleChannelNetwork` serialises transits: a reservation request
is granted at the latest of the requested time and the channel's
free-time, and every granted transit is recorded for post-hoc
verification (the trace's network intervals must be pairwise disjoint —
a simulator self-check, not an assumption).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.tracing import SimulationObserver

__all__ = ["Transit", "SingleChannelNetwork"]


@dataclass(frozen=True, slots=True)
class Transit:
    """One granted channel reservation."""

    kind: str          # "work" or "result"
    computer: int      # destination (work) or source (result) computer
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class SingleChannelNetwork:
    """Serialising reservation manager for the shared channel.

    An optional *observer* is notified of every granted reservation, so
    channel occupancy can be traced live; with ``observer=None`` the
    grant path's only extra work is one ``is not None`` branch.
    """

    def __init__(self, observer: "SimulationObserver | None" = None) -> None:
        self._free_at = 0.0
        self._transits: list[Transit] = []
        self._observer = observer

    @property
    def free_at(self) -> float:
        """Earliest time a new transit could start."""
        return self._free_at

    @property
    def transits(self) -> tuple[Transit, ...]:
        """All granted transits, in grant order."""
        return tuple(self._transits)

    def reserve(self, kind: str, computer: int, earliest: float,
                duration: float) -> Transit:
        """Reserve the channel for ``duration`` at or after ``earliest``.

        Returns the granted :class:`Transit` (whose ``start`` may be later
        than ``earliest`` if the channel was busy).
        """
        if duration < 0:
            raise SimulationError(f"transit duration must be nonnegative, got {duration!r}")
        if earliest < 0 or earliest != earliest:
            raise SimulationError(f"invalid reservation time {earliest!r}")
        start = max(earliest, self._free_at)
        transit = Transit(kind=kind, computer=computer, start=start,
                          end=start + duration)
        self._free_at = transit.end
        self._transits.append(transit)
        if self._observer is not None:
            self._observer.on_transit(transit)
        return transit

    def assert_serial(self) -> None:
        """Self-check: verify no two recorded transits overlap.

        Raises
        ------
        SimulationError
            If the single-message invariant was violated (indicates an
            engine bug; reservations are serialised by construction).
        """
        ordered = sorted(self._transits, key=lambda t: (t.start, t.end))
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end - 1e-12 * max(1.0, prev.end):
                raise SimulationError(
                    f"two messages in transit at once: "
                    f"{prev.kind}(C{prev.computer}) [{prev.start:.6g},{prev.end:.6g}) and "
                    f"{cur.kind}(C{cur.computer}) [{cur.start:.6g},{cur.end:.6g})")

    def busy_time(self) -> float:
        """Total time the channel spends occupied."""
        return sum(t.duration for t in self._transits)
