"""The single-message-in-transit network resource.

The model's cardinal communication constraint (paper §1.2) is that *at
most one intercomputer message is in transit at a time*.
:class:`SingleChannelNetwork` serialises transits: a reservation request
is granted at the latest of the requested time and the channel's
free-time, and every granted transit is recorded for post-hoc
verification (the trace's network intervals must be pairwise disjoint —
a simulator self-check, not an assumption).

Channel faults
--------------
With a :class:`~repro.faults.models.ChannelLoss` attached, individual
transmission attempts can be *lost*: the attempt still occupies the
channel (the time is spent), but delivery fails and the message is
retransmitted after an exponential backoff, up to the
:class:`~repro.faults.models.RetransmitPolicy` budget.  A message that
exhausts its budget comes back with ``delivered=False`` and the entities
decide what that costs (a work quantum that never arrives; a result that
stalls or is skipped by the finishing-order contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.faults.models import ChannelLoss, RetransmitPolicy
    from repro.obs.tracing import SimulationObserver

__all__ = ["Transit", "SingleChannelNetwork"]


@dataclass(frozen=True, slots=True)
class Transit:
    """One granted channel reservation (one transmission attempt)."""

    kind: str          # "work" or "result"
    computer: int      # destination (work) or source (result) computer
    start: float
    end: float
    #: Which transmission attempt this is (0 = first try).
    attempt: int = 0
    #: Whether the message actually arrived (False = lost attempt).
    delivered: bool = True

    @property
    def duration(self) -> float:
        return self.end - self.start


class SingleChannelNetwork:
    """Serialising reservation manager for the shared channel.

    An optional *observer* is notified of every granted reservation, so
    channel occupancy can be traced live; with ``observer=None`` the
    grant path's only extra work is one ``is not None`` branch.

    ``faults``/``retransmit`` inject message loss: see the module
    docstring.  With ``faults=None`` (the default) the reserve path is
    byte-for-byte the original single-attempt grant.
    """

    def __init__(self, observer: "SimulationObserver | None" = None,
                 faults: "ChannelLoss | None" = None,
                 retransmit: "RetransmitPolicy | None" = None) -> None:
        self._free_at = 0.0
        self._transits: list[Transit] = []
        self._observer = observer
        self._faults = faults
        if faults is not None and retransmit is None:
            from repro.faults.models import RetransmitPolicy
            retransmit = RetransmitPolicy()
        self._retransmit = retransmit
        self._retransmits = 0
        self._messages_lost = 0

    @property
    def free_at(self) -> float:
        """Earliest time a new transit could start."""
        return self._free_at

    @property
    def transits(self) -> tuple[Transit, ...]:
        """All granted transits, in grant order (lost attempts included)."""
        return tuple(self._transits)

    @property
    def retransmits(self) -> int:
        """How many attempts were repeats of a lost transmission."""
        return self._retransmits

    @property
    def messages_lost(self) -> int:
        """Messages that exhausted their retransmission budget."""
        return self._messages_lost

    def _grant(self, kind: str, computer: int, earliest: float,
               duration: float, attempt: int, delivered: bool) -> Transit:
        start = max(earliest, self._free_at)
        transit = Transit(kind=kind, computer=computer, start=start,
                          end=start + duration, attempt=attempt,
                          delivered=delivered)
        self._free_at = transit.end
        self._transits.append(transit)
        if self._observer is not None:
            self._observer.on_transit(transit)
        return transit

    def reserve(self, kind: str, computer: int, earliest: float,
                duration: float) -> Transit:
        """Reserve the channel for ``duration`` at or after ``earliest``.

        Returns the final :class:`Transit` of the message: the first
        successful attempt or, if the retransmission budget runs out,
        the last lost attempt with ``delivered=False``.  Every attempt
        (lost or not) occupies the channel and is recorded.
        """
        if duration < 0:
            raise SimulationError(f"transit duration must be nonnegative, got {duration!r}")
        if earliest < 0 or earliest != earliest:
            raise SimulationError(f"invalid reservation time {earliest!r}")
        faults = self._faults
        if faults is None:
            return self._grant(kind, computer, earliest, duration, 0, True)
        attempt = 0
        while True:
            lost = faults.lost(kind, computer, attempt)
            transit = self._grant(kind, computer, earliest, duration,
                                  attempt, not lost)
            if not lost:
                return transit
            attempt += 1
            if attempt > self._retransmit.max_retransmits:
                self._messages_lost += 1
                return transit
            self._retransmits += 1
            earliest = transit.end + self._retransmit.delay(attempt)

    def assert_serial(self) -> None:
        """Self-check: verify no two recorded transits overlap.

        Raises
        ------
        SimulationError
            If the single-message invariant was violated (indicates an
            engine bug; reservations are serialised by construction).
        """
        ordered = sorted(self._transits, key=lambda t: (t.start, t.end))
        for prev, cur in zip(ordered, ordered[1:]):
            if cur.start < prev.end - 1e-12 * max(1.0, prev.end):
                raise SimulationError(
                    f"two messages in transit at once: "
                    f"{prev.kind}(C{prev.computer}) [{prev.start:.6g},{prev.end:.6g}) and "
                    f"{cur.kind}(C{cur.computer}) [{cur.start:.6g},{cur.end:.6g})")

    def busy_time(self) -> float:
        """Total time the channel spends occupied (lost attempts included)."""
        return sum(t.duration for t in self._transits)
