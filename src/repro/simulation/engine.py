"""The discrete-event simulation engine.

A conventional event-driven core: the engine pops the earliest event,
advances the clock to its firing time, and runs its callback (which may
schedule further events).  The clock never moves backwards; scheduling
into the past raises.  The engine itself knows nothing about clusters —
the CEP semantics live in :mod:`repro.simulation.entities`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError
from repro.simulation.events import Event, EventQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs is optional)
    from repro.obs.tracing import SimulationObserver

__all__ = ["Simulator"]


class Simulator:
    """Event loop with a monotone clock.

    An optional *observer* (see
    :class:`repro.obs.tracing.SimulationObserver`) receives a callback
    on every event pop, so runs can be traced live instead of
    reconstructed post-hoc.  With ``observer=None`` (the default) the
    loop's only extra work is one ``is not None`` branch per event.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule_at(2.0, lambda: fired.append(sim.now))
    >>> _ = sim.schedule_at(1.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, observer: "SimulationObserver | None" = None) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self._events_processed = 0
        self._peak_queue_depth = 0
        self._observer = observer

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    @property
    def peak_queue_depth(self) -> int:
        """Largest event-queue size seen at any pop (cancelled included)."""
        return self._peak_queue_depth

    @property
    def queue_depth(self) -> int:
        """Current event-queue size (cancelled-but-unreaped included)."""
        return self._queue.size

    @property
    def observer(self) -> "SimulationObserver | None":
        """The attached live observer, if any."""
        return self._observer

    # ------------------------------------------------------------------
    def schedule_at(self, time: float, action: Callable[[], None],
                    label: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now!r}, "
                f"requested={time!r} ({label or 'unlabelled'})")
        return self._queue.push(time, action, label)

    def schedule_after(self, delay: float, action: Callable[[], None],
                       label: str = "") -> Event:
        """Schedule ``action`` ``delay`` time units from now (delay ≥ 0)."""
        if delay < 0:
            raise SimulationError(f"delay must be nonnegative, got {delay!r}")
        return self._queue.push(self._now + delay, action, label)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event would fire *after* this
            time (the clock is left at ``until``).  Events scheduled
            exactly at ``until`` still fire.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run)")
        self._running = True
        observer = self._observer
        if observer is not None:
            observer.on_run_start(self)
        try:
            queue = self._queue
            # The heap list object is stable across push/pop, so len() on
            # this alias is the cheapest possible queue-depth probe — the
            # disabled-observer loop must stay within noise of the
            # uninstrumented engine (see benchmarks/bench_obs_overhead.py).
            heap = queue._heap
            peak = self._peak_queue_depth
            while not queue.empty:
                next_time = queue.next_time
                assert next_time is not None
                if until is not None and next_time > until:
                    break
                depth = len(heap)
                if depth > peak:
                    peak = depth
                event = queue.pop()
                self._now = event.time
                self._events_processed += 1
                if observer is not None:
                    observer.on_event(event.time, event.label, depth)
                event.action()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._peak_queue_depth = peak
            self._running = False
            if observer is not None:
                observer.on_run_end(self)
