"""Event-free analytic simulation of fault-free CEP rounds.

For a fault-free run of any :class:`~repro.protocols.base.WorkAllocation`
the discrete-event engine is pure overhead: every event it would pop is
the deterministic consequence of the allocation itself, so the complete
per-worker timeline — send-preparation starts, arrival times, busy-period
ends, result transits, completed work, makespan, channel busy time — is
computable in closed form.  This module does exactly that, in two tiers:

**Vectorized closed form** (the common case).
    Seriatim sends are a NumPy cumulative sum of the per-quantum
    ``(π + τ)·w`` costs; busy periods are one fused multiply-add; and the
    finishing-order result chain ``end_k = max(earliest_k, end_{k−1}) + d_k``
    unrolls to ``cumsum(d) + cummax(earliest − cumsum(d)_{shifted})`` —
    no Python-level loop anywhere.  This tier applies whenever every
    work-package reservation precedes the first result reservation,
    which holds for every feasible FIFO/LIFO schedule and for the LP
    allocations of :mod:`repro.protocols.general` in the paper's layout.

**Grant-order merge** (the general case).
    The single shared channel serialises messages *in reservation
    order*, and with an adversarial (Σ, Φ) pair an early-finishing
    worker's result reservation can interleave with — and therefore
    delay — later work sends.  The event engine resolves this through
    its heap; the fast path resolves it with an O(n) two-stream merge
    that replays the exact reservation ordering (including the engine's
    tie rule: a busy-end callback is enqueued before the competing
    next-send callback, so on equal reservation times the result wins).

Both tiers reproduce the event engine's arithmetic operation-for-
operation wherever the order of floating-point reductions matters, so
they agree with :func:`~repro.simulation.runner.simulate_allocation`'s
event engine to ~1 ulp per milestone (the test suite enforces 1e-9 over
randomized clusters and protocols; see
``tests/properties/test_fastpath_properties.py``).

What forces the event engine instead (see
:func:`~repro.simulation.runner.simulate_allocation`'s dispatch): any
fault or failure injection (timelines change the arithmetic), and —
under ``engine="auto"`` — per-event observers, whose callbacks only the
event loop can deliver.  Recovery loops
(:func:`repro.faults.recovery.simulate_with_recovery`) always inject
faults and therefore always use the event engine.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimulationError
from repro.protocols.base import WorkAllocation
from repro.simulation.entities import WorkerRecord

__all__ = ["analytic_simulation", "analytic_records"]


def analytic_records(allocation: WorkAllocation, *,
                     results_policy: str = "late") -> dict[int, WorkerRecord]:
    """Closed-form per-worker milestone records for a fault-free run.

    Returns a record per computer (zero-work computers keep their NaN
    milestones, exactly like the event engine's untouched records).
    """
    if results_policy not in ("late", "greedy"):
        raise SimulationError(f"unknown results_policy {results_policy!r}")
    params = allocation.params
    w = allocation.w
    records = {c: WorkerRecord(computer=c, work=wc)
               for c, wc in enumerate(w.tolist())}
    s_order = np.asarray(allocation.startup_order)
    sig = s_order[w[s_order] > 0.0]
    if sig.size == 0:
        return records
    f_order = np.asarray(allocation.finishing_order)
    phi = f_order[w[f_order] > 0.0]
    has_results = params.delta > 0.0

    slots: np.ndarray | None = None
    if has_results and results_policy == "late":
        # Same arithmetic as the runner's slot precomputation.
        suffix = np.cumsum((params.tau_delta * w[phi])[::-1])[::-1]
        slots = allocation.lifespan - suffix

    pi, tau, td, B = params.pi, params.tau, params.tau_delta, params.B
    rho = allocation.profile.rho

    # ---- sends: candidate timeline assuming no result interleaves ----
    w_s = w[sig]
    send_cost = pi * w_s + tau * w_s
    arrived = np.cumsum(send_cost)
    prep_start = np.concatenate(([0.0], arrived[:-1]))
    busy_end = arrived + B * rho[sig] * w_s

    if not has_results:
        for c, ps, ar, be in zip(sig.tolist(), prep_start.tolist(),
                                 arrived.tolist(), busy_end.tolist()):
            r = records[c]
            r.send_prep_start = ps
            r.arrived = ar
            r.busy_end = be
            # δ = 0: completion is the busy end itself (no result message).
            r.result_start = be
            r.result_end = be
        return records

    pos_in_sig = np.empty(allocation.n, dtype=int)
    pos_in_sig[sig] = np.arange(sig.size)

    # The last work-package reservation happens at the transit end of the
    # second-to-last send; the first result reservation at Φ(1)'s busy
    # end.  Strict separation ⇒ every send is granted before any result
    # and the fully vectorized form below is exact.  On a tie the event
    # engine grants the result first, so ties go to the merge path.
    last_send_reserve = float(arrived[-2]) if sig.size > 1 else 0.0
    if float(busy_end[pos_in_sig[phi[0]]]) > last_send_reserve:
        for c, ps, ar, be in zip(sig.tolist(), prep_start.tolist(),
                                 arrived.tolist(), busy_end.tolist()):
            r = records[c]
            r.send_prep_start = ps
            r.arrived = ar
            r.busy_end = be
        # Result chain in finishing order, channel free after the last
        # send: end_k = max(earliest_k, end_{k-1}) + d_k.
        d = td * w[phi]
        ready = busy_end[pos_in_sig[phi]]
        earliest = np.maximum(ready, slots) if slots is not None else ready
        cum_d = np.cumsum(d)
        offset = np.concatenate(([0.0], cum_d[:-1]))
        free0 = float(arrived[-1])
        # The scan end_k = max(earliest_k, end_{k-1}) + d_k unrolls to
        # offset_k + M_k with M_k = cummax(max(earliest_m, free0) - offset_m):
        # every candidate start, rebased by the result work already queued.
        M = np.maximum.accumulate(np.maximum(earliest - offset,
                                             free0 - offset))
        starts = offset + M
        ends = starts + d
        for c, st, en in zip(phi.tolist(), starts.tolist(), ends.tolist()):
            r = records[c]
            r.result_start = st
            r.result_end = en
        return records

    slot_dict = (dict(zip(phi.tolist(), slots.tolist()))
                 if slots is not None else None)
    return _merged_records(allocation, records, sig.tolist(), phi.tolist(),
                           slot_dict)


def _merged_records(allocation: WorkAllocation, records: dict[int, WorkerRecord],
                    sigma: list[int], phi: list[int],
                    slot_starts: dict[int, float] | None) -> dict[int, WorkerRecord]:
    """General case: replay the channel's reservation order without events.

    Two streams contend for the channel, each internally ordered:

    * work sends, in startup order — send *i* is reserved at the transit
      end of send *i−1* (the server's seriatim chain);
    * results, in finishing order — result *k* is reserved once worker
      Φ(k) has finished computing **and** result *k−1* has been granted
      (the sequencer's contract), i.e. at the running max of busy ends.

    The merge consumes whichever stream reserves earlier; on a tie the
    result wins (the busy-end callback sits ahead of the next-send
    callback in the event queue).  Each grant replays the engine's exact
    arithmetic: ``start = max(earliest, free_at)``, ``end = start + dur``.
    """
    params = allocation.params
    pi, tau, td, B = params.pi, params.tau, params.tau_delta, params.B
    rho = allocation.profile.rho
    w = allocation.w

    free_at = 0.0
    next_send_at = 0.0           # reservation time of the next send
    last_result_reserve = 0.0    # grant event time of the previous result
    busy_end_of: dict[int, float] = {}
    i = j = 0
    ks, kf = len(sigma), len(phi)
    inf = math.inf

    while i < ks or j < kf:
        send_reserve = next_send_at if i < ks else inf
        if j < kf:
            be = busy_end_of.get(phi[j])
            result_reserve = (max(be, last_result_reserve)
                              if be is not None else inf)
        else:
            result_reserve = inf

        if result_reserve <= send_reserve:   # tie → result first
            c = phi[j]
            ready = busy_end_of[c]
            earliest = (max(ready, slot_starts[c])
                        if slot_starts is not None else ready)
            start = earliest if earliest > free_at else free_at
            end = start + td * float(w[c])
            free_at = end
            records[c].result_start = start
            records[c].result_end = end
            last_result_reserve = result_reserve
            j += 1
        else:
            c = sigma[i]
            wc = float(w[c])
            records[c].send_prep_start = next_send_at
            prep_end = next_send_at + pi * wc
            start = prep_end if prep_end > free_at else free_at
            end = start + tau * wc
            records[c].arrived = end
            busy_end_of[c] = end + B * float(rho[c]) * wc
            records[c].busy_end = busy_end_of[c]
            free_at = end
            next_send_at = end
            i += 1

    return records


def analytic_simulation(allocation: WorkAllocation, *,
                        results_policy: str = "late"):
    """Event-free equivalent of the fault-free event engine.

    Returns a :class:`~repro.simulation.runner.SimulationResult` whose
    per-worker records, completed work, makespan, network busy time and
    transit count agree with the event engine within float rounding.
    ``events_processed`` and ``peak_queue_depth`` are 0 — no events ran.
    """
    # Deferred to dodge the runner ↔ fastpath import cycle.
    from repro.simulation.runner import SimulationResult

    records = analytic_records(allocation, results_policy=results_policy)
    params = allocation.params
    w = allocation.w
    active = np.flatnonzero(w > 0.0)

    tol = 1e-9 * max(1.0, allocation.lifespan)
    ends = np.array([records[c].result_end for c in active.tolist()])
    finished = ~np.isnan(ends)
    in_time = finished & (ends <= allocation.lifespan + tol)
    completed = tuple(active[in_time].tolist())
    completed_work = float(w[active[in_time]].sum())
    makespan = float(ends[finished].max()) if finished.any() else 0.0

    work_total = float(w[active].sum())
    has_results = params.delta > 0.0
    network_busy = params.tau * work_total
    transits = int(active.size)
    if has_results:
        network_busy += params.tau_delta * work_total
        transits += int(active.size)

    return SimulationResult(
        allocation=allocation,
        records=tuple(records[c] for c in range(allocation.n)),
        completed_work=completed_work,
        completed_computers=completed,
        events_processed=0,
        network_busy_time=network_busy,
        makespan=makespan,
        failed_computers=(),
        peak_queue_depth=0,
        transits_granted=transits,
    )
