"""Discrete-event simulator for CEP worksharing (substitute for the
authors' unpublished simulator — see DESIGN.md §4).

The simulator executes :class:`~repro.protocols.base.WorkAllocation`
objects operationally — event queue, serialised single channel, per-worker
state machines — and measures completed work independently of the
analytic formulas, closing the loop between Theorem 2 and an actual
execution.
"""

from repro.simulation.engine import Simulator
from repro.simulation.entities import ResultSequencer, Server, Worker, WorkerRecord
from repro.simulation.events import Event, EventQueue
from repro.simulation.network import SingleChannelNetwork, Transit
from repro.simulation.fastpath import analytic_records, analytic_simulation
from repro.simulation.runner import (
    SimulationResult,
    default_engine,
    set_default_engine,
    simulate_allocation,
    simulate_protocol,
)
from repro.simulation.trace import (
    UtilizationSummary,
    WorkerIdleBreakdown,
    event_log,
    utilization_summary,
)

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "SingleChannelNetwork",
    "Transit",
    "Server",
    "Worker",
    "WorkerRecord",
    "ResultSequencer",
    "SimulationResult",
    "simulate_allocation",
    "simulate_protocol",
    "default_engine",
    "set_default_engine",
    "analytic_records",
    "analytic_simulation",
    "UtilizationSummary",
    "WorkerIdleBreakdown",
    "utilization_summary",
    "event_log",
]
