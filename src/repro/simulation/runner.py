"""High-level simulation driver and result object.

:func:`simulate_allocation` wires a :class:`~repro.simulation.engine.Simulator`,
a :class:`~repro.simulation.network.SingleChannelNetwork`, one
:class:`~repro.simulation.entities.Worker` per computer and a
:class:`~repro.simulation.entities.Server` together, executes the given
:class:`~repro.protocols.base.WorkAllocation`, and reports what actually
completed within the lifespan.

The key output, :attr:`SimulationResult.completed_work`, counts a
computer's quantum only when its results fully reached the server by
``L``.  For FIFO allocations this equals the analytic ``W(L;P)`` exactly
(the fluid schedule has no end effects beyond the ones it already
budgets), which the integration test suite verifies over random clusters.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import SimulationError
from repro.faults.spec import FaultScenario, MaterializedFaults, parse_faults
from repro.obs.tracing import SimulationObserver, current_observation
from repro.protocols.base import Protocol, WorkAllocation
from repro.protocols.timeline import Interval, Timeline
from repro.simulation.engine import Simulator
from repro.simulation.entities import ResultSequencer, Server, Worker, WorkerRecord
from repro.simulation.network import SingleChannelNetwork

__all__ = ["SimulationResult", "simulate_allocation", "simulate_protocol",
           "set_default_engine", "default_engine"]

_ENGINES = ("auto", "events", "analytic")

#: Process default for ``simulate_allocation(engine=None)``.  ``None``
#: means "not yet resolved": the first :func:`default_engine` call reads
#: ``$REPRO_SIM_ENGINE`` (how the CLI's ``--engine`` choice reaches
#: batch worker processes, which inherit the environment, not the
#: parent's globals) and **validates** it, so a typo'd value fails with
#: one clear error naming the variable instead of surfacing as a
#: mystery deep inside the first simulation.
_default_engine: str | None = None


def default_engine() -> str:
    """The engine used when ``simulate_allocation`` gets ``engine=None``.

    Resolves (and caches) ``$REPRO_SIM_ENGINE`` on first use; raises
    :class:`~repro.errors.SimulationError` if the variable holds
    anything but ``auto``/``events``/``analytic``.
    """
    global _default_engine
    if _default_engine is None:
        candidate = os.environ.get("REPRO_SIM_ENGINE", "auto")
        if candidate not in _ENGINES:
            raise SimulationError(
                f"invalid $REPRO_SIM_ENGINE value {candidate!r}; "
                f"expected one of {_ENGINES}")
        _default_engine = candidate
    return _default_engine


def set_default_engine(engine: str) -> str:
    """Set the process-wide default engine; returns the previous default.

    ``"auto"`` (the initial default) takes the analytic fast path for
    every fault-free, unobserved run and the event engine otherwise;
    ``"events"``/``"analytic"`` force one engine for all runs that do
    not pass an explicit ``engine=``.  The initial value honours the
    ``REPRO_SIM_ENGINE`` environment variable, which is how the CLI's
    ``--engine`` flag crosses into batch worker processes.
    """
    global _default_engine
    if engine not in _ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {_ENGINES}")
    # Resolve the previous value before overwriting so callers can
    # restore it; an unresolved default is reported as the environment's
    # raw value (restoring a bad one re-raises, which is the point).
    previous = (_default_engine if _default_engine is not None
                else os.environ.get("REPRO_SIM_ENGINE", "auto"))
    _default_engine = engine
    return previous


@dataclass(frozen=True)
class SimulationResult:
    """Everything observed during one simulated CEP run."""

    allocation: WorkAllocation
    records: tuple[WorkerRecord, ...]
    completed_work: float
    completed_computers: tuple[int, ...]
    events_processed: int
    network_busy_time: float
    makespan: float
    failed_computers: tuple[int, ...] = ()
    #: Largest event-queue depth the engine saw (final queue is empty by
    #: construction — the loop drains it).  One source of truth with the
    #: metrics layer's ``sim_queue_depth_peak`` gauge.
    peak_queue_depth: int = 0
    #: Channel reservations granted during the run (lost attempts included).
    transits_granted: int = 0
    #: Channel attempts that repeated a lost transmission.
    retransmits: int = 0
    #: Messages (work or result) that exhausted their retransmit budget.
    messages_lost: int = 0
    #: Individual fault events the scenario injected into this run.
    faults_injected: int = 0

    @property
    def lifespan(self) -> float:
        return self.allocation.lifespan

    @property
    def all_completed(self) -> bool:
        """Whether every positive-work computer finished in time."""
        active = [r for r in self.records if r.work > 0.0]
        return len(self.completed_computers) == len(active)

    def record_for(self, computer: int) -> WorkerRecord:
        """The milestone record of one computer."""
        for r in self.records:
            if r.computer == computer:
                return r
        raise SimulationError(f"no record for computer {computer}")

    def to_timeline(self) -> Timeline:
        """Convert observed milestones into a checkable :class:`Timeline`."""
        params = self.allocation.params
        intervals: list[Interval] = []
        for r in self.records:
            if r.work == 0.0 or np.isnan(r.send_prep_start):
                continue
            prep_end = r.send_prep_start + params.pi * r.work
            intervals.append(Interval("server", "work-prep", r.computer,
                                      r.send_prep_start, prep_end))
            if not np.isnan(r.arrived):
                intervals.append(Interval("network", "work-transit", r.computer,
                                          r.arrived - params.tau * r.work, r.arrived))
            if not np.isnan(r.busy_end):
                intervals.append(Interval(f"worker:{r.computer}", "busy", r.computer,
                                          r.arrived, r.busy_end))
            if params.delta > 0.0 and not np.isnan(r.result_end):
                intervals.append(Interval("network", "result-transit", r.computer,
                                          r.result_start, r.result_end))
        return Timeline(allocation=self.allocation, intervals=tuple(intervals))


def simulate_allocation(allocation: WorkAllocation, *,
                        results_policy: str = "late",
                        failures: dict[int, float] | None = None,
                        faults: "FaultScenario | MaterializedFaults | str | None" = None,
                        skip_failed_results: bool = False,
                        observer: SimulationObserver | None = None,
                        engine: str | None = None) -> SimulationResult:
    """Execute a work allocation at event granularity — or analytically.

    Parameters
    ----------
    allocation:
        The schedule to execute.
    engine:
        ``"events"`` — always run the discrete-event engine.
        ``"analytic"`` — always take the event-free closed form of
        :mod:`repro.simulation.fastpath`; raises
        :class:`~repro.errors.SimulationError` when combined with any
        fault or failure injection (the analytic timeline is fault-free
        by construction).
        ``"auto"`` — analytic whenever the run is fault-free and no
        per-event observer is attached (explicitly or via the ambient
        observation's tracer); the event engine otherwise.  An ambient
        *metrics-only* observation keeps the fast path and counts its
        use in the ``sim_fastpath_hits_total`` counter.
        ``None`` (default) — use :func:`default_engine` (``"auto"``
        unless overridden by :func:`set_default_engine` or the
        ``REPRO_SIM_ENGINE`` environment variable).
    results_policy:
        ``"late"`` — results use the contiguous end-of-lifespan slots of
        the paper's layout; ``"greedy"`` — results go as early as the
        finishing order and channel allow.
    failures:
        Failure injection: maps computer index → crash time.  A crashed
        worker performs no further actions; work on its bench is lost.
        Results already handed to the channel still arrive.  Sugar for a
        crash-only fault scenario; combines with ``faults``.
    faults:
        General fault injection: a
        :class:`~repro.faults.spec.FaultScenario` (or an already
        materialised one, or a ``--faults`` grammar string).  Scenarios
        are materialised against this allocation's cluster size and
        lifespan; the materialisation is seeded and deterministic, so
        fault-injected runs replay bit-identically.
    skip_failed_results:
        Recovery heuristic for the result sequencer: step past dead
        workers so the tail of the finishing order can still deliver.
        Off by default — the strict FIFO contract stalls everything
        queued behind a failure, which is precisely the fragility worth
        measuring.
    observer:
        Live instrumentation hook.  When omitted, the ambient
        :func:`repro.obs.tracing.current_observation` (if any) supplies
        one, so a CLI- or benchmark-installed trace/metrics context
        reaches simulations it never constructed; with no observation
        active the run is uninstrumented.

    Returns
    -------
    SimulationResult
    """
    if results_policy not in ("late", "greedy"):
        raise SimulationError(f"unknown results_policy {results_policy!r}")
    if engine is None:
        engine = default_engine()
    if engine not in _ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {_ENGINES}")
    failures = dict(failures or {})
    for c, t in failures.items():
        if not (0 <= c < allocation.n):
            raise SimulationError(f"failure injected for unknown computer {c}")
        if t < 0 or t != t:
            raise SimulationError(f"invalid failure time {t!r} for computer {c}")
    if isinstance(faults, str):
        faults = parse_faults(faults)
    if isinstance(faults, FaultScenario):
        faults = faults.materialize(allocation.n, allocation.lifespan)
    if faults is not None:
        for c in faults.timelines:
            if not (0 <= c < allocation.n):
                raise SimulationError(
                    f"fault timeline for unknown computer {c}")

    # ---- engine dispatch -------------------------------------------------
    has_faults = bool(failures) or faults is not None
    if engine == "analytic":
        if has_faults:
            raise SimulationError(
                "engine='analytic' cannot simulate faults or failures — "
                "fault timelines change the event arithmetic; use "
                "engine='events' (or 'auto') for fault-injected runs")
        return _analytic_dispatch(allocation, results_policy, observer)
    if engine == "auto" and not has_faults and observer is None:
        ambient = current_observation()
        if ambient is None or ambient.tracer is None:
            # Fault-free and nobody needs per-event callbacks: the
            # closed form is exact.  A metrics-only ambient observation
            # still gets its run counters (and fast-path coverage).
            return _analytic_dispatch(allocation, results_policy, None)

    params = allocation.params
    profile = allocation.profile
    if observer is None:
        ctx = current_observation()
        if ctx is not None:
            observer = SimulationObserver(ctx.tracer, ctx.registry)
    sim = Simulator(observer=observer)
    network = SingleChannelNetwork(
        observer=observer,
        faults=faults.channel if faults is not None else None,
        retransmit=faults.retransmit if faults is not None else None)

    slot_starts: dict[int, float] | None = None
    if results_policy == "late" and params.delta > 0.0:
        active = [c for c in allocation.finishing_order if allocation.w[c] > 0.0]
        durations = [params.tau_delta * float(allocation.w[c]) for c in active]
        suffix = np.cumsum(durations[::-1])[::-1] if active else np.array([])
        slot_starts = {c: float(allocation.lifespan - s)
                       for c, s in zip(active, suffix)}

    sequencer: ResultSequencer | None = None
    if params.delta > 0.0:
        sequencer = ResultSequencer(
            sim, network,
            tuple(c for c in allocation.finishing_order if allocation.w[c] > 0.0),
            slot_starts,
            skip_failed=skip_failed_results)

    records: dict[int, WorkerRecord] = {}
    workers: dict[int, Worker] = {}
    timelines = faults.timelines if faults is not None else {}
    for c in range(profile.n):
        wc = float(allocation.w[c])
        record = WorkerRecord(computer=c, work=wc)
        records[c] = record
        workers[c] = Worker(
            sim, record,
            busy_time=params.B * float(profile.rho[c]) * wc,
            result_duration=params.tau_delta * wc,
            sequencer=sequencer,
            failure_time=failures.get(c),
            fault=timelines.get(c))

    if observer is not None and observer.tracer is not None:
        with observer.tracer.span("sim.run", n=profile.n,
                                  lifespan=allocation.lifespan,
                                  protocol=allocation.protocol_name,
                                  policy=results_policy) as span_attrs:
            Server(sim, network, allocation, workers).start()
            sim.run()
            span_attrs["events"] = sim.events_processed
    else:
        Server(sim, network, allocation, workers).start()
        sim.run()
    network.assert_serial()

    if observer is not None and observer.registry is not None:
        _record_run_metrics(observer.registry, network, records,
                            faults.faults_injected if faults is not None
                            else len(failures))

    tol = 1e-9 * max(1.0, allocation.lifespan)
    completed = tuple(
        c for c in range(profile.n)
        if allocation.w[c] > 0.0
        and records[c].completed
        and records[c].result_end <= allocation.lifespan + tol)
    completed_work = float(sum(allocation.w[c] for c in completed))
    makespan = max((r.result_end for r in records.values() if r.completed),
                   default=0.0)

    return SimulationResult(
        allocation=allocation,
        records=tuple(records[c] for c in range(profile.n)),
        completed_work=completed_work,
        completed_computers=completed,
        events_processed=sim.events_processed,
        network_busy_time=network.busy_time(),
        makespan=makespan,
        failed_computers=tuple(c for c in range(profile.n)
                               if workers[c].failed),
        peak_queue_depth=sim.peak_queue_depth,
        transits_granted=len(network.transits),
        retransmits=network.retransmits,
        messages_lost=network.messages_lost,
        faults_injected=(faults.faults_injected if faults is not None
                         else len(failures)),
    )


def _analytic_dispatch(allocation: WorkAllocation, results_policy: str,
                       observer: SimulationObserver | None) -> SimulationResult:
    """Run the event-free fast path and fold its facts into any metrics."""
    from repro.simulation.fastpath import analytic_simulation

    result = analytic_simulation(allocation, results_policy=results_policy)
    registry = observer.registry if observer is not None else None
    if registry is None:
        ctx = current_observation()
        if ctx is not None:
            registry = ctx.registry
    if registry is not None:
        _record_analytic_metrics(registry, result)
    return result


def _record_analytic_metrics(registry, result: SimulationResult) -> None:
    """The fast path's equivalent of the per-run event-engine metrics.

    Event-granular series (queue depth, events/second) have no analytic
    counterpart; everything derivable from the closed-form records is
    recorded under the same metric names the event engine uses, plus the
    ``sim_fastpath_hits_total`` coverage counter batch runs report.
    """
    registry.counter(
        "sim_fastpath_hits_total",
        "simulation runs served by the event-free analytic fast path"
    ).inc()
    registry.counter("sim_runs_total", "simulation runs executed").inc()
    registry.counter(
        "sim_engine_runs_total", "simulation runs, by dispatching engine"
    ).inc(engine="analytic")
    registry.counter(
        "sim_channel_busy_time",
        "simulated time units the shared channel spent occupied"
    ).inc(result.network_busy_time)
    registry.counter(
        "sim_transits_total", "channel reservations granted"
    ).inc(result.transits_granted)
    milestones = registry.counter(
        "sim_worker_milestones_total",
        "per-worker milestones reached, by milestone kind")
    arrived = sum(1 for r in result.records if not np.isnan(r.arrived))
    computed = sum(1 for r in result.records if not np.isnan(r.busy_end))
    delivered = sum(1 for r in result.records if r.completed)
    if arrived:
        milestones.inc(arrived, milestone="work_arrived")
    if computed:
        milestones.inc(computed, milestone="compute_done")
    if delivered:
        milestones.inc(delivered, milestone="result_delivered")


def _record_run_metrics(registry, network: SingleChannelNetwork,
                        records: dict[int, WorkerRecord],
                        faults_injected: int = 0) -> None:
    """Fold one finished run's channel and milestone facts into metrics."""
    registry.counter(
        "sim_engine_runs_total", "simulation runs, by dispatching engine"
    ).inc(engine="events")
    if faults_injected:
        registry.counter(
            "sim_faults_injected_total", "fault events injected into runs"
        ).inc(faults_injected)
    registry.counter(
        "sim_channel_busy_time",
        "simulated time units the shared channel spent occupied"
    ).inc(network.busy_time())
    registry.counter(
        "sim_transits_total", "channel reservations granted"
    ).inc(len(network.transits))
    if network.retransmits:
        registry.counter(
            "sim_retransmits_total",
            "channel attempts repeating a lost transmission"
        ).inc(network.retransmits)
    if network.messages_lost:
        registry.counter(
            "sim_messages_lost_total",
            "messages that exhausted their retransmit budget"
        ).inc(network.messages_lost)
    milestones = registry.counter(
        "sim_worker_milestones_total",
        "per-worker milestones reached, by milestone kind")
    arrived = sum(1 for r in records.values() if not np.isnan(r.arrived))
    computed = sum(1 for r in records.values() if not np.isnan(r.busy_end))
    delivered = sum(1 for r in records.values() if r.completed)
    if arrived:
        milestones.inc(arrived, milestone="work_arrived")
    if computed:
        milestones.inc(computed, milestone="compute_done")
    if delivered:
        milestones.inc(delivered, milestone="result_delivered")


def simulate_protocol(protocol: Protocol, profile: Profile, params: ModelParams,
                      lifespan: float, *, results_policy: str = "late",
                      observer: SimulationObserver | None = None,
                      engine: str | None = None) -> SimulationResult:
    """Allocate with ``protocol`` and execute the result in the simulator."""
    allocation = protocol.allocate(profile, params, lifespan)
    return simulate_allocation(allocation, results_policy=results_policy,
                               observer=observer, engine=engine)
