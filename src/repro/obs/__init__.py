"""Observability: metrics registry, structured tracing, exporters, profiling.

The instrumentation layer the rest of the library reports into:

* :mod:`repro.obs.metrics` — counters, gauges, histograms, timers and a
  process-global :func:`default_registry`;
* :mod:`repro.obs.tracing` — nestable spans, point events, the
  :func:`traced` decorator, and the ambient :func:`observe` context the
  simulator and experiment framework pick up automatically;
* :mod:`repro.obs.export` — JSONL trace streams, Prometheus text
  exposition, human-readable run summaries;
* :mod:`repro.obs.profile` — an opt-in hot-path profiler for benchmarks.

Everything here is dependency-free and pay-for-what-you-use: with no
:class:`Observation` installed, the instrumented code paths reduce to a
single ``is not None`` check.
"""

from repro.obs.export import (
    JsonlTraceWriter,
    perfetto_trace,
    prometheus_text,
    read_jsonl,
    run_summary,
    write_metrics,
    write_perfetto,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_registry,
    set_default_registry,
)
from repro.obs.profile import DEFAULT_TARGETS, FunctionStat, HotPathProfiler
from repro.obs.store import RunStore, default_store_path
from repro.obs.tracing import (
    Observation,
    SimulationObserver,
    TraceContext,
    Tracer,
    current_observation,
    new_span_id,
    observe,
    traced,
)

__all__ = [
    # metrics
    "Counter", "Gauge", "Histogram", "Timer", "MetricsRegistry",
    "default_registry", "set_default_registry",
    # tracing
    "Tracer", "TraceContext", "Observation", "SimulationObserver", "observe",
    "current_observation", "traced", "new_span_id",
    # export
    "JsonlTraceWriter", "read_jsonl", "prometheus_text", "write_metrics",
    "run_summary", "perfetto_trace", "write_perfetto",
    # store
    "RunStore", "default_store_path",
    # profiling
    "HotPathProfiler", "FunctionStat", "DEFAULT_TARGETS",
]
