"""Metrics primitives: counters, gauges, histograms, timers, and a registry.

A zero-dependency metrics core in the spirit of ``prometheus_client``,
small enough to embed in the simulator's hot path.  Every metric supports
labels (keyword arguments on the update call), each metric guards its
cells with a lock so concurrent experiment runners can share a registry,
and a process-global default registry gives the CLI and the experiment
framework one well-known place to meet.

Design constraints, in order of importance:

* **disabled must be free** — nothing in this module runs unless a
  caller explicitly updates a metric; the simulator's no-observer path
  never touches it;
* **enabled must be cheap** — one dict lookup + one lock per update;
* **export-friendly** — :meth:`MetricsRegistry.collect` yields plain
  samples the exporters in :mod:`repro.obs.export` can render without
  knowing metric internals.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Iterator

from repro.errors import InvalidParameterError

__all__ = ["Counter", "Gauge", "Histogram", "Timer", "Sample",
           "MetricsRegistry", "default_registry", "set_default_registry"]

LabelKey = tuple[tuple[str, str], ...]

#: Prometheus' classic latency buckets (seconds) — good from ~5ms to 10s.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.075, 0.1, 0.25, 0.5,
                   0.75, 1.0, 2.5, 5.0, 7.5, 10.0)


def _label_key(labels: dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set (values stringified)."""
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Sample:
    """One exported time-series point: ``name{labels} value``."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey, value: float) -> None:
        self.name = name
        self.labels = labels
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label_text = ",".join(f"{k}={v!r}" for k, v in self.labels)
        return f"Sample({self.name}{{{label_text}}} {self.value})"


class _Metric:
    """Shared bookkeeping for all metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 constant_labels: dict[str, Any] | None = None) -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise InvalidParameterError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.constant_labels = dict(constant_labels or {})
        self._lock = threading.Lock()

    def _key(self, labels: dict[str, Any]) -> LabelKey:
        """The cell key: the call's labels over the registry's constants.

        Constant labels (e.g. ``worker="3"`` on every metric of one
        serving worker) are folded into every cell at update time, so
        dumps merged across processes keep per-worker series distinct
        without any call site knowing which process it runs in.
        """
        if self.constant_labels:
            return _label_key({**self.constant_labels, **labels})
        return _label_key(labels)

    def samples(self) -> Iterator[Sample]:  # pragma: no cover - abstract
        raise NotImplementedError

    def dump_cells(self) -> list:  # pragma: no cover - abstract
        raise NotImplementedError

    def merge_cell(self, labels: LabelKey, payload: Any) -> None:  # pragma: no cover
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing count (events processed, runs started)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "",
                 constant_labels: dict[str, Any] | None = None) -> None:
        super().__init__(name, help, constant_labels)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be ≥ 0) to the labelled cell."""
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (amount={amount!r})")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current count of one labelled cell (0.0 if never incremented)."""
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._values.items())
        for key, value in sorted(items):
            yield Sample(self.name, key, value)

    def dump_cells(self) -> list:
        with self._lock:
            return [[list(k), v] for k, v in sorted(self._values.items())]

    def merge_cell(self, labels: LabelKey, payload: Any) -> None:
        with self._lock:
            self._values[labels] = self._values.get(labels, 0.0) + float(payload)


class Gauge(_Metric):
    """A value that can go up and down (queue depth, in-flight work)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 constant_labels: dict[str, Any] | None = None) -> None:
        super().__init__(name, help, constant_labels)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def set_to_max(self, value: float, **labels: Any) -> None:
        """Keep the cell at the maximum it has ever been set to."""
        key = self._key(labels)
        with self._lock:
            if value > self._values.get(key, float("-inf")):
                self._values[key] = float(value)

    def value(self, **labels: Any) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            items = list(self._values.items())
        for key, value in sorted(items):
            yield Sample(self.name, key, value)

    def dump_cells(self) -> list:
        with self._lock:
            return [[list(k), v] for k, v in sorted(self._values.items())]

    def merge_cell(self, labels: LabelKey, payload: Any) -> None:
        # Gauges are last-writer metrics; across workers "the largest any
        # worker saw" is the only order-independent combination.  Merge
        # on the dumped key verbatim — the source registry's constant
        # labels are already baked into it.
        with self._lock:
            if float(payload) > self._values.get(labels, float("-inf")):
                self._values[labels] = float(payload)


class _HistogramCell:
    __slots__ = ("bucket_counts", "count", "sum", "exemplars")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets  # cumulative at export time only
        self.count = 0
        self.sum = 0.0
        #: bucket index -> (exemplar labels, observed value, unix time);
        #: allocated lazily so exemplar-free histograms pay nothing.
        self.exemplars: dict[int, tuple[dict, float, float]] | None = None


class Histogram(_Metric):
    """A distribution with fixed upper-bound buckets (durations, sizes)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                 constant_labels: dict[str, Any] | None = None) -> None:
        super().__init__(name, help, constant_labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(b != b for b in bounds):
            raise InvalidParameterError(f"invalid histogram buckets {buckets!r}")
        self.buckets = bounds
        self._cells: dict[LabelKey, _HistogramCell] = {}

    def observe(self, value: float, *,
                exemplar: dict[str, Any] | None = None,
                **labels: Any) -> None:
        """Record one observation into its bucket.

        ``exemplar`` optionally attaches OpenMetrics-style exemplar
        labels (typically ``{"trace_id": ...}``) to the bucket this
        observation lands in — the latest exemplar per bucket wins, so
        a scrape can jump from a latency bucket straight to a recent
        trace that exhibited it.  Exemplars are process-local colour:
        they ride :func:`repro.obs.export.prometheus_text` when asked
        for, but are intentionally excluded from :meth:`dump_cells` /
        :meth:`merge_cell` (merging "latest" across workers has no
        order-independent answer).
        """
        key = self._key(labels)
        idx = bisect_left(self.buckets, value)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = _HistogramCell(len(self.buckets) + 1)
            bucket = min(idx, len(self.buckets))
            cell.bucket_counts[bucket] += 1
            cell.count += 1
            cell.sum += value
            if exemplar:
                if cell.exemplars is None:
                    cell.exemplars = {}
                cell.exemplars[bucket] = (dict(exemplar), float(value),
                                          time.time())

    def exemplar_for(self, labels: LabelKey, le: str
                     ) -> tuple[dict, float, float] | None:
        """The stored exemplar of one cell's ``le``-labelled bucket."""
        cell = self._cells.get(labels)
        if cell is None or not cell.exemplars:
            return None
        bounds = list(self.buckets) + [float("inf")]
        for index, bound in enumerate(bounds):
            text = "+Inf" if bound == float("inf") else f"{bound:g}"
            if text == le:
                return cell.exemplars.get(index)
        return None

    def count(self, **labels: Any) -> int:
        cell = self._cells.get(self._key(labels))
        return cell.count if cell else 0

    def sum(self, **labels: Any) -> float:
        cell = self._cells.get(self._key(labels))
        return cell.sum if cell else 0.0

    def bucket_counts(self, **labels: Any) -> dict[float, int]:
        """Cumulative per-bucket counts, keyed by upper bound (inf last)."""
        cell = self._cells.get(self._key(labels))
        bounds = list(self.buckets) + [float("inf")]
        if cell is None:
            return {b: 0 for b in bounds}
        cumulative, total = {}, 0
        for bound, n in zip(bounds, cell.bucket_counts):
            total += n
            cumulative[bound] = total
        return cumulative

    def samples(self) -> Iterator[Sample]:
        with self._lock:
            cells = {k: (list(c.bucket_counts), c.count, c.sum)
                     for k, c in self._cells.items()}
        bounds = list(self.buckets) + [float("inf")]
        for key, (counts, count, total) in sorted(cells.items()):
            cumulative = 0
            for bound, n in zip(bounds, counts):
                cumulative += n
                le = "+Inf" if bound == float("inf") else f"{bound:g}"
                yield Sample(f"{self.name}_bucket", key + (("le", le),),
                             float(cumulative))
            yield Sample(f"{self.name}_sum", key, total)
            yield Sample(f"{self.name}_count", key, float(count))

    def dump_cells(self) -> list:
        with self._lock:
            return [[list(k), {"bucket_counts": list(c.bucket_counts),
                               "count": c.count, "sum": c.sum}]
                    for k, c in sorted(self._cells.items())]

    def merge_cell(self, labels: LabelKey, payload: Any) -> None:
        counts = payload["bucket_counts"]
        if len(counts) != len(self.buckets) + 1:
            raise InvalidParameterError(
                f"histogram {self.name!r}: cannot merge a cell with "
                f"{len(counts)} buckets into {len(self.buckets) + 1}")
        with self._lock:
            cell = self._cells.get(labels)
            if cell is None:
                cell = self._cells[labels] = _HistogramCell(len(counts))
            for i, n in enumerate(counts):
                cell.bucket_counts[i] += int(n)
            cell.count += int(payload["count"])
            cell.sum += float(payload["sum"])


class Timer(Histogram):
    """A histogram of elapsed seconds with a context-manager front end.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> timer = registry.timer("step_seconds")
    >>> with timer.time(step="solve"):
    ...     pass
    >>> timer.count(step="solve")
    1
    """

    kind = "histogram"

    def time(self, **labels: Any) -> "_TimerContext":
        return _TimerContext(self, labels)


class _TimerContext:
    __slots__ = ("_timer", "_labels", "_start", "elapsed")

    def __init__(self, timer: Timer, labels: dict[str, Any]) -> None:
        self._timer = timer
        self._labels = labels
        self.elapsed = float("nan")

    def __enter__(self) -> "_TimerContext":
        import time
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        import time
        self.elapsed = time.perf_counter() - self._start
        self._timer.observe(self.elapsed, **self._labels)


class MetricsRegistry:
    """A named collection of metrics with get-or-create semantics.

    ``registry.counter("x")`` always returns the same object for the
    same name; asking for an existing name with a different kind raises,
    so two subsystems cannot silently fight over one series.

    ``constant_labels`` stamps every cell of every metric the registry
    creates — a serving worker builds its registry with
    ``constant_labels={"worker": "3"}`` and every existing call site
    gains the label for free; :meth:`dump`/:meth:`merge` then keep
    per-worker series distinct in the supervisor aggregate.
    """

    def __init__(self, constant_labels: dict[str, Any] | None = None) -> None:
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()
        self.constant_labels = dict(constant_labels or {})

    def _get_or_create(self, cls: type, name: str, help: str,
                       **kwargs: Any) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise InvalidParameterError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}")
                return existing
            metric = cls(name, help,
                         constant_labels=self.constant_labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def timer(self, name: str, help: str = "",
              buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> Timer:
        return self._get_or_create(Timer, name, help, buckets=buckets)

    def collect(self) -> list[_Metric]:
        """All registered metrics, sorted by name (for exporters)."""
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict dump of every sample (JSON-safe)."""
        out: dict[str, Any] = {}
        for metric in self.collect():
            series = {}
            for sample in metric.samples():
                label_text = ",".join(f"{k}={v}" for k, v in sample.labels)
                series[f"{sample.name}{{{label_text}}}" if label_text
                       else sample.name] = sample.value
            out[metric.name] = {"kind": metric.kind, "help": metric.help,
                                "series": series}
        return out

    def dump(self) -> dict[str, Any]:
        """A structured, mergeable dump of every metric.

        Unlike :meth:`snapshot` (which flattens to export strings), the
        dump keeps enough structure — metric class, buckets, raw cell
        payloads — for :meth:`merge` to fold it into another registry.
        The payload is plain JSON types plus nothing else, so it crosses
        process boundaries (pickle or JSON) unchanged.  This is how the
        batch engine ships each worker's metrics back to the session
        registry.
        """
        metrics = []
        for metric in self.collect():
            entry: dict[str, Any] = {"name": metric.name,
                                     "class": type(metric).__name__,
                                     "help": metric.help,
                                     "cells": metric.dump_cells()}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
            metrics.append(entry)
        return {"metrics": metrics}

    def merge(self, dump: dict[str, Any]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters and histograms/timers add cell-wise; gauges keep the
        maximum either side has seen (the only order-independent choice).
        Metrics absent here are created with the dumped help/buckets.
        """
        factories: dict[str, Callable[..., _Metric]] = {
            "Counter": self.counter, "Gauge": self.gauge,
            "Histogram": self.histogram, "Timer": self.timer}
        for entry in dump.get("metrics", ()):
            try:
                factory = factories[entry["class"]]
            except KeyError:
                raise InvalidParameterError(
                    f"cannot merge unknown metric class {entry['class']!r}")
            kwargs: dict[str, Any] = {}
            if entry["class"] in ("Histogram", "Timer") and "buckets" in entry:
                kwargs["buckets"] = tuple(entry["buckets"])
            metric = factory(entry["name"], entry.get("help", ""), **kwargs)
            for labels, payload in entry["cells"]:
                key = tuple((str(k), str(v)) for k, v in labels)
                metric.merge_cell(key, payload)

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global registry shared by CLI, experiments, simulator."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (returns the previous one, for restoring)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
