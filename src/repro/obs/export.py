"""Exporters: JSONL trace streams, Prometheus text format, run summaries.

Four ways out of the observability layer:

* :class:`JsonlTraceWriter` — a tracer sink that appends one JSON object
  per line, flushed eagerly so a running simulation can be tailed;
* :func:`prometheus_text` — the classic ``# HELP`` / ``# TYPE`` text
  exposition of a :class:`~repro.obs.metrics.MetricsRegistry`, with
  optional OpenMetrics histogram exemplars (bucket → trace id);
* :func:`perfetto_trace` / :func:`write_perfetto` — tracer records as
  Chrome/Perfetto trace-event JSON, loadable in ``ui.perfetto.dev``;
* :func:`run_summary` — a human-readable digest for the end of a run.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, TextIO

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["JsonlTraceWriter", "read_jsonl", "prometheus_text",
           "write_metrics", "run_summary", "perfetto_trace",
           "write_perfetto"]


class JsonlTraceWriter:
    """A tracer sink that streams records to a JSONL file.

    Usable directly as the ``sink=`` argument of
    :class:`~repro.obs.tracing.Tracer`; also a context manager so the
    CLI can guarantee the stream is closed.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.obs.tracing import Tracer
    >>> path = tempfile.mktemp()
    >>> with JsonlTraceWriter(path) as writer:
    ...     tracer = Tracer(sink=writer)
    ...     tracer.event("hello", answer=42)
    >>> read_jsonl(path)[0]["attrs"]["answer"]
    42
    >>> os.unlink(path)
    """

    def __init__(self, path: str, *, flush_every: int = 64) -> None:
        self._fh: TextIO | None = open(path, "w", encoding="utf-8")
        self.path = path
        self.records_written = 0
        self._flush_every = max(1, flush_every)

    def __call__(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, separators=(",", ":"),
                                  default=str) + "\n")
        self.records_written += 1
        if self.records_written % self._flush_every == 0:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a JSONL trace back into a list of records (validates JSON)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the text exposition format.

    The spec escapes exactly backslash and line feed in help text (no
    quote escaping there, unlike label values).  Unescaped, a newline
    smuggled into a help string — e.g. from a label derived from a raw
    request path — would split the line and corrupt every sample below
    it for any exposition parser.
    """
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
                 .replace('"', r"\""))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _exemplar_suffix(metric: Any, sample: Any) -> str:
    """OpenMetrics exemplar annotation for a ``_bucket`` sample, or ``""``.

    Rendered as `` # {trace_id="..."} value timestamp`` after the bucket
    line, which classic Prometheus parsers tolerate and OpenMetrics
    scrapers surface as clickable exemplars.
    """
    if not isinstance(metric, Histogram):
        return ""
    if not sample.name.endswith("_bucket"):
        return ""
    le = None
    bare = []
    for key, value in sample.labels:
        if key == "le":
            le = value
        else:
            bare.append((key, value))
    if le is None:
        return ""
    found = metric.exemplar_for(tuple(bare), le)
    if found is None:
        return ""
    ex_labels, value, stamp = found
    label_text = ",".join(f'{k}="{_escape_label_value(str(v))}"'
                          for k, v in sorted(ex_labels.items()))
    return (f" # {{{label_text}}} {_format_value(value)} "
            f"{stamp:.3f}")


def prometheus_text(registry: MetricsRegistry, *,
                    exemplars: bool = False) -> str:
    """Render a registry in the Prometheus text exposition format.

    With ``exemplars=True``, histogram ``_bucket`` lines carry the
    latest recorded exemplar (OpenMetrics ``# {labels} value ts``
    syntax), letting a dashboard jump from a latency bucket to the
    trace that landed there.
    """
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample in metric.samples():
            suffix = _exemplar_suffix(metric, sample) if exemplars else ""
            if sample.labels:
                label_text = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in sample.labels)
                lines.append(f"{sample.name}{{{label_text}}} "
                             f"{_format_value(sample.value)}{suffix}")
            else:
                lines.append(f"{sample.name} "
                             f"{_format_value(sample.value)}{suffix}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write the registry's Prometheus text dump to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


def perfetto_trace(records: Iterable[dict[str, Any]]) -> dict[str, Any]:
    """Convert tracer records to Chrome/Perfetto trace-event JSON.

    Spans become ``ph: "X"`` complete events (microsecond ``ts``/``dur``
    relative to the tracer epoch) and point events become ``ph: "i"``
    instants.  Records are grouped into tracks by the ``worker_pid``
    attribute (0 = the coordinating process) so a fanned-out
    ``run_batch --jobs N`` renders as one process lane per worker, and
    trace/span/parent ids ride along in ``args`` for cross-referencing
    with the run-history store.

    The result loads directly in ``ui.perfetto.dev`` or
    ``chrome://tracing``.
    """
    events: list[dict[str, Any]] = []
    pids_seen: set[int] = set()
    for record in records:
        attrs = record.get("attrs") or {}
        try:
            pid = int(attrs.get("worker_pid", 0))
        except (TypeError, ValueError):
            pid = 0
        pids_seen.add(pid)
        args = {k: v for k, v in attrs.items() if k != "worker_pid"}
        for key in ("trace_id", "span_id", "parent_id"):
            if record.get(key) is not None:
                args[key] = record[key]
        base = {
            "name": str(record.get("name", "?")),
            "pid": pid,
            "tid": int(record.get("depth", 0)),
            "ts": round(float(record.get("ts", 0.0)) * 1e6, 3),
            "args": args,
        }
        if record.get("type") == "span":
            base["ph"] = "X"
            base["dur"] = round(float(record.get("dur", 0.0)) * 1e6, 3)
            base["cat"] = "span"
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
            base["cat"] = str(record.get("type", "event"))
        events.append(base)
    for pid in sorted(pids_seen):
        label = "coordinator" if pid == 0 else f"worker pid={pid}"
        events.append({"ph": "M", "name": "process_name", "pid": pid,
                       "tid": 0, "args": {"name": label}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(records: Iterable[dict[str, Any]], path: str) -> None:
    """Write tracer records to ``path`` as Perfetto trace-event JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(perfetto_trace(records), fh, separators=(",", ":"),
                  default=str)


def run_summary(registry: MetricsRegistry) -> str:
    """A short human-readable digest of every metric in the registry."""
    lines = ["run summary", "-----------"]
    metrics = registry.collect()
    if not metrics:
        lines.append("(no metrics recorded)")
    for metric in metrics:
        for sample in metric.samples():
            label_text = ", ".join(f"{k}={v}" for k, v in sample.labels)
            name = f"{sample.name} [{label_text}]" if label_text else sample.name
            lines.append(f"  {name:<48s} {_format_value(sample.value)}")
    return "\n".join(lines)
