"""Exporters: JSONL trace streams, Prometheus text format, run summaries.

Three ways out of the observability layer:

* :class:`JsonlTraceWriter` — a tracer sink that appends one JSON object
  per line, flushed eagerly so a running simulation can be tailed;
* :func:`prometheus_text` — the classic ``# HELP`` / ``# TYPE`` text
  exposition of a :class:`~repro.obs.metrics.MetricsRegistry`;
* :func:`run_summary` — a human-readable digest for the end of a run.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

from repro.obs.metrics import MetricsRegistry

__all__ = ["JsonlTraceWriter", "read_jsonl", "prometheus_text",
           "write_metrics", "run_summary"]


class JsonlTraceWriter:
    """A tracer sink that streams records to a JSONL file.

    Usable directly as the ``sink=`` argument of
    :class:`~repro.obs.tracing.Tracer`; also a context manager so the
    CLI can guarantee the stream is closed.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.obs.tracing import Tracer
    >>> path = tempfile.mktemp()
    >>> with JsonlTraceWriter(path) as writer:
    ...     tracer = Tracer(sink=writer)
    ...     tracer.event("hello", answer=42)
    >>> read_jsonl(path)[0]["attrs"]["answer"]
    42
    >>> os.unlink(path)
    """

    def __init__(self, path: str, *, flush_every: int = 64) -> None:
        self._fh: TextIO | None = open(path, "w", encoding="utf-8")
        self.path = path
        self.records_written = 0
        self._flush_every = max(1, flush_every)

    def __call__(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(record, separators=(",", ":"),
                                  default=str) + "\n")
        self.records_written += 1
        if self.records_written % self._flush_every == 0:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_jsonl(path: str) -> list[dict[str, Any]]:
    """Load a JSONL trace back into a list of records (validates JSON)."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the text exposition format.

    The spec escapes exactly backslash and line feed in help text (no
    quote escaping there, unlike label values).  Unescaped, a newline
    smuggled into a help string — e.g. from a label derived from a raw
    request path — would split the line and corrupt every sample below
    it for any exposition parser.
    """
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
                 .replace('"', r"\""))


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample in metric.samples():
            if sample.labels:
                label_text = ",".join(
                    f'{k}="{_escape_label_value(v)}"' for k, v in sample.labels)
                lines.append(f"{sample.name}{{{label_text}}} "
                             f"{_format_value(sample.value)}")
            else:
                lines.append(f"{sample.name} {_format_value(sample.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    """Write the registry's Prometheus text dump to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_text(registry))


def run_summary(registry: MetricsRegistry) -> str:
    """A short human-readable digest of every metric in the registry."""
    lines = ["run summary", "-----------"]
    metrics = registry.collect()
    if not metrics:
        lines.append("(no metrics recorded)")
    for metric in metrics:
        for sample in metric.samples():
            label_text = ", ".join(f"{k}={v}" for k, v in sample.labels)
            name = f"{sample.name} [{label_text}]" if label_text else sample.name
            lines.append(f"  {name:<48s} {_format_value(sample.value)}")
    return "\n".join(lines)
