"""Opt-in hot-path profiler: cumulative per-function timers via patching.

Benchmarks (and curious users) can wrap the library's known hot
functions — the X-measure kernels, FIFO allocation/timeline
construction, and the simulator event loop — with cumulative wall-clock
timers, run a workload, and read off where the time went.  This is
deliberately *not* ``cProfile``: it times a handful of named targets
with near-zero distortion instead of every frame with a lot.

The profiler is strictly opt-in and reversible: :meth:`enable` swaps
each target for a timing wrapper, :meth:`disable` restores the original
attributes, and the context-manager form guarantees restoration.

Examples
--------
>>> from repro.obs.profile import HotPathProfiler
>>> from repro.core.measure import x_measure  # doctest: +SKIP
>>> with HotPathProfiler() as prof:           # doctest: +SKIP
...     run_workload()
>>> print(prof.report())                      # doctest: +SKIP
"""

from __future__ import annotations

import functools
import importlib
import time
from dataclasses import dataclass
from typing import Any

from repro.errors import InvalidParameterError

__all__ = ["FunctionStat", "HotPathProfiler", "DEFAULT_TARGETS"]

#: ``module:qualname`` paths of the library's known hot functions.
DEFAULT_TARGETS = (
    "repro.core.measure:x_measure",
    "repro.core.measure:x_measure_many",
    "repro.protocols.fifo:fifo_allocation",
    "repro.protocols.timeline:build_timeline",
    "repro.simulation.engine:Simulator.run",
)


@dataclass(frozen=True)
class FunctionStat:
    """Cumulative timing of one profiled target."""

    target: str
    calls: int
    cumulative_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.cumulative_seconds / self.calls if self.calls else 0.0


class _Patch:
    """One installed wrapper: where it lives and what it replaced."""

    __slots__ = ("owner", "attr", "original", "calls", "seconds")

    def __init__(self, owner: Any, attr: str, original: Any) -> None:
        self.owner = owner
        self.attr = attr
        self.original = original
        self.calls = 0
        self.seconds = 0.0


def _resolve(target: str) -> tuple[Any, str, Any]:
    """``"pkg.mod:Class.method"`` → (owner object, attr name, callable)."""
    try:
        module_name, qualname = target.split(":")
    except ValueError:
        raise InvalidParameterError(
            f"profiler target must look like 'module:qualname', got {target!r}")
    owner: Any = importlib.import_module(module_name)
    *holders, attr = qualname.split(".")
    for holder in holders:
        owner = getattr(owner, holder)
    func = getattr(owner, attr)
    if not callable(func):
        raise InvalidParameterError(f"profiler target {target!r} is not callable")
    return owner, attr, func


class HotPathProfiler:
    """Cumulative timers around a set of ``module:qualname`` targets."""

    def __init__(self, targets: tuple[str, ...] = DEFAULT_TARGETS) -> None:
        self.targets = tuple(targets)
        self._patches: dict[str, _Patch] = {}
        self.enabled = False

    # ------------------------------------------------------------------
    def enable(self) -> "HotPathProfiler":
        """Install timing wrappers (idempotent)."""
        if self.enabled:
            return self
        for target in self.targets:
            owner, attr, original = _resolve(target)
            patch = _Patch(owner, attr, original)

            @functools.wraps(original)
            def wrapper(*args: Any, _patch: _Patch = patch, **kwargs: Any) -> Any:
                start = time.perf_counter()
                try:
                    return _patch.original(*args, **kwargs)
                finally:
                    _patch.seconds += time.perf_counter() - start
                    _patch.calls += 1

            setattr(owner, attr, wrapper)
            self._patches[target] = patch
        self.enabled = True
        return self

    def disable(self) -> None:
        """Restore every patched attribute (idempotent)."""
        for patch in self._patches.values():
            setattr(patch.owner, patch.attr, patch.original)
        self.enabled = False

    def __enter__(self) -> "HotPathProfiler":
        return self.enable()

    def __exit__(self, *exc_info: Any) -> None:
        self.disable()

    # ------------------------------------------------------------------
    def stats(self) -> list[FunctionStat]:
        """Per-target stats, hottest first."""
        stats = [FunctionStat(target=t, calls=p.calls,
                              cumulative_seconds=p.seconds)
                 for t, p in self._patches.items()]
        return sorted(stats, key=lambda s: s.cumulative_seconds, reverse=True)

    def report(self) -> str:
        """A monospace table of where the time went."""
        lines = [f"{'target':<44s} {'calls':>8s} {'cum (s)':>10s} {'mean (ms)':>10s}",
                 "-" * 76]
        for s in self.stats():
            lines.append(f"{s.target:<44s} {s.calls:>8d} "
                         f"{s.cumulative_seconds:>10.4f} "
                         f"{s.mean_seconds * 1e3:>10.4f}")
        return "\n".join(lines)
