"""Persistent run-history store: every run and request, queryable later.

The rest of the observability layer is ephemeral by design — a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.Tracer` live and die with their process.
This module is the durable tier: a stdlib-``sqlite3`` database (WAL
mode, safe under concurrent writers) holding one row per *run* — an
experiment invocation, a ``run all`` batch, a service request — plus
the run's span records, metrics-registry dump, engine choice, cache
outcome and fault counters.

Two tables:

``runs``
    One row per recorded run: identity (``run_id``, ``trace_id``, the
    PR-2 content-addressed ``cache_key`` where applicable), provenance
    (``kind``, ``label``, ``engine``, ``status``), timing
    (``started_at`` wall clock, ``wall_seconds``), and two JSON
    documents — the metrics-registry :meth:`~repro.obs.metrics.
    MetricsRegistry.dump` and a free-form ``extra`` block (shard
    layout, cache hit/miss counts, fault counters).
``spans``
    The run's trace records, exactly as the tracer emitted them
    (``type``/``name``/``ts``/``dur``/``depth``/``attrs`` plus the
    ``trace_id``/``span_id``/``parent_id`` linkage), so a stored run
    can be re-exported as Perfetto JSON or re-analysed with
    ``repro-hetero obs top`` long after the process exited.

Durability contract: the store must never break the run it is
recording.  Every write path catches ``sqlite3.Error`` and degrades to
"not recorded" — losing telemetry is acceptable, losing results is not.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Iterable

from repro.obs.tracing import new_span_id

__all__ = ["RunStore", "default_store_path"]

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id         TEXT PRIMARY KEY,
    kind           TEXT NOT NULL,
    label          TEXT NOT NULL DEFAULT '',
    trace_id       TEXT,
    cache_key      TEXT,
    engine         TEXT,
    status         TEXT NOT NULL DEFAULT 'ok',
    started_at     REAL NOT NULL,
    wall_seconds   REAL,
    metrics        TEXT,
    extra          TEXT,
    schema_version INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_started_idx ON runs (started_at);
CREATE INDEX IF NOT EXISTS runs_kind_idx    ON runs (kind, started_at);
CREATE INDEX IF NOT EXISTS runs_trace_idx   ON runs (trace_id);
CREATE TABLE IF NOT EXISTS spans (
    run_id    TEXT NOT NULL,
    trace_id  TEXT,
    span_id   TEXT,
    parent_id TEXT,
    type      TEXT NOT NULL,
    name      TEXT NOT NULL,
    ts        REAL NOT NULL,
    dur       REAL,
    depth     INTEGER NOT NULL DEFAULT 0,
    attrs     TEXT
);
CREATE INDEX IF NOT EXISTS spans_run_idx   ON spans (run_id);
CREATE INDEX IF NOT EXISTS spans_trace_idx ON spans (trace_id);
"""


def default_store_path() -> Path:
    """Where the run history lives unless overridden.

    ``$REPRO_OBS_DIR`` wins; otherwise the platform state home
    (``$XDG_STATE_HOME`` or ``~/.local/state``) under ``repro-hetero``.
    """
    override = os.environ.get("REPRO_OBS_DIR")
    if override:
        return Path(override) / "runs.sqlite3"
    xdg = os.environ.get("XDG_STATE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".local" / "state"
    return base / "repro-hetero" / "runs.sqlite3"


def _json_or_none(document: Any) -> str | None:
    if document is None:
        return None
    try:
        return json.dumps(document, separators=(",", ":"), default=str)
    except (TypeError, ValueError):
        return None


def _loads_or_none(text: str | None) -> Any:
    if not text:
        return None
    try:
        return json.loads(text)
    except ValueError:
        return None


class RunStore:
    """A WAL-mode sqlite database of runs and their span records.

    One store object holds one connection, guarded by a lock so the
    service's event loop and its executor threads can share it; across
    *processes* each opens its own store on the same path and WAL
    journalling plus a generous busy timeout arbitrate the writers.
    """

    def __init__(self, path: str | Path | None = None, *,
                 timeout: float = 10.0) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), timeout=timeout,
                                     check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- writing -------------------------------------------------------
    def record_run(self, *, kind: str, label: str = "",
                   trace_id: str | None = None,
                   cache_key: str | None = None,
                   engine: str | None = None,
                   status: str = "ok",
                   started_at: float | None = None,
                   wall_seconds: float | None = None,
                   metrics: dict | None = None,
                   extra: dict | None = None,
                   spans: Iterable[dict] | None = None,
                   run_id: str | None = None) -> str | None:
        """Persist one run; returns its id, or None if the write failed.

        ``metrics`` is a :meth:`MetricsRegistry.dump` document;
        ``spans`` an iterable of tracer records; ``extra`` anything
        JSON-able (cache hits, shard layout, fault counters).
        ``cache_key`` is the PR-2 content-addressed result-cache key
        where one applies, so a stored run can be joined back to the
        cache entry it produced or reused.
        """
        run_id = run_id or new_span_id()
        row = (run_id, kind, label, trace_id, cache_key, engine, status,
               started_at if started_at is not None else time.time(),
               wall_seconds, _json_or_none(metrics), _json_or_none(extra),
               _SCHEMA_VERSION)
        try:
            with self._lock:
                self._conn.execute(
                    "INSERT OR REPLACE INTO runs (run_id, kind, label, "
                    "trace_id, cache_key, engine, status, started_at, "
                    "wall_seconds, metrics, extra, schema_version) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", row)
                self._conn.commit()
        except sqlite3.Error:
            return None
        if spans:
            self.add_spans(run_id, spans, trace_id=trace_id)
        return run_id

    def add_spans(self, run_id: str, records: Iterable[dict], *,
                  trace_id: str | None = None) -> int:
        """Append tracer records to a run; returns how many were stored."""
        rows = []
        for record in records:
            rows.append((
                run_id,
                record.get("trace_id", trace_id),
                record.get("span_id"),
                record.get("parent_id"),
                record.get("type", "span"),
                record.get("name", ""),
                float(record.get("ts", 0.0)),
                record.get("dur"),
                int(record.get("depth", 0)),
                _json_or_none(record.get("attrs")),
            ))
        if not rows:
            return 0
        try:
            with self._lock:
                self._conn.executemany(
                    "INSERT INTO spans (run_id, trace_id, span_id, "
                    "parent_id, type, name, ts, dur, depth, attrs) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)", rows)
                self._conn.commit()
        except sqlite3.Error:
            return 0
        return len(rows)

    # -- reading -------------------------------------------------------
    @staticmethod
    def _run_from_row(row: sqlite3.Row) -> dict[str, Any]:
        run = dict(row)
        run["metrics"] = _loads_or_none(run.get("metrics"))
        run["extra"] = _loads_or_none(run.get("extra"))
        run["started_iso"] = time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(run["started_at"]))
        return run

    def runs(self, *, kind: str | None = None, limit: int = 50
             ) -> list[dict[str, Any]]:
        """The most recent runs, newest first."""
        query = "SELECT * FROM runs"
        args: list[Any] = []
        if kind is not None:
            query += " WHERE kind = ?"
            args.append(kind)
        query += " ORDER BY started_at DESC, run_id DESC LIMIT ?"
        args.append(int(limit))
        with self._lock:
            rows = self._conn.execute(query, args).fetchall()
        return [self._run_from_row(row) for row in rows]

    def get_run(self, run_id: str) -> dict[str, Any] | None:
        """One run by exact id — or unambiguous id prefix, for humans."""
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)).fetchone()
            if row is None and run_id:
                matches = self._conn.execute(
                    "SELECT * FROM runs WHERE run_id LIKE ? LIMIT 2",
                    (run_id + "%",)).fetchall()
                row = matches[0] if len(matches) == 1 else None
        return self._run_from_row(row) if row is not None else None

    def latest(self, *, kind: str | None = None) -> dict[str, Any] | None:
        """The most recently started run (optionally of one kind)."""
        found = self.runs(kind=kind, limit=1)
        return found[0] if found else None

    def spans(self, run_id: str) -> list[dict[str, Any]]:
        """A run's trace records, reconstructed in emission order."""
        run = self.get_run(run_id)
        resolved = run["run_id"] if run is not None else run_id
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM spans WHERE run_id = ? ORDER BY rowid",
                (resolved,)).fetchall()
        return [self._span_from_row(row) for row in rows]

    def spans_for_trace(self, trace_id: str) -> list[dict[str, Any]]:
        """Every stored record carrying one trace id, across runs."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM spans WHERE trace_id = ? ORDER BY rowid",
                (trace_id,)).fetchall()
        return [self._span_from_row(row) for row in rows]

    @staticmethod
    def _span_from_row(row: sqlite3.Row) -> dict[str, Any]:
        record = {
            "type": row["type"], "name": row["name"], "ts": row["ts"],
            "depth": row["depth"], "attrs": _loads_or_none(row["attrs"]) or {},
            "trace_id": row["trace_id"], "parent_id": row["parent_id"],
        }
        if row["dur"] is not None:
            record["dur"] = row["dur"]
        if row["span_id"] is not None:
            record["span_id"] = row["span_id"]
        return record

    def summary(self) -> dict[str, Any]:
        """Store-level digest: totals by kind/status, newest run, size."""
        with self._lock:
            total = self._conn.execute(
                "SELECT COUNT(*) FROM runs").fetchone()[0]
            span_total = self._conn.execute(
                "SELECT COUNT(*) FROM spans").fetchone()[0]
            by_kind = dict(self._conn.execute(
                "SELECT kind, COUNT(*) FROM runs GROUP BY kind").fetchall())
            by_status = dict(self._conn.execute(
                "SELECT status, COUNT(*) FROM runs GROUP BY status"
            ).fetchall())
            newest = self._conn.execute(
                "SELECT run_id, kind, label, started_at FROM runs "
                "ORDER BY started_at DESC LIMIT 1").fetchone()
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        return {
            "path": str(self.path),
            "runs": int(total),
            "spans": int(span_total),
            "by_kind": {k: int(v) for k, v in by_kind.items()},
            "by_status": {k: int(v) for k, v in by_status.items()},
            "latest": dict(newest) if newest is not None else None,
            "db_bytes": int(size),
        }

    # -- retention -----------------------------------------------------
    def prune(self, *, max_runs: int | None = None,
              max_age_days: float | None = None) -> int:
        """Drop old runs (and their spans); returns how many were removed.

        ``max_runs`` keeps only the newest N; ``max_age_days`` drops
        anything started longer ago than that.  Both may be combined.
        """
        doomed: set[str] = set()
        with self._lock:
            if max_age_days is not None:
                cutoff = time.time() - float(max_age_days) * 86400.0
                doomed.update(run_id for (run_id,) in self._conn.execute(
                    "SELECT run_id FROM runs WHERE started_at < ?",
                    (cutoff,)))
            if max_runs is not None:
                doomed.update(run_id for (run_id,) in self._conn.execute(
                    "SELECT run_id FROM runs ORDER BY started_at DESC, "
                    "run_id DESC LIMIT -1 OFFSET ?", (int(max_runs),)))
            if doomed:
                marks = ",".join("?" for _ in doomed)
                ids = sorted(doomed)
                self._conn.execute(
                    f"DELETE FROM spans WHERE run_id IN ({marks})", ids)
                self._conn.execute(
                    f"DELETE FROM runs WHERE run_id IN ({marks})", ids)
                self._conn.commit()
        return len(doomed)
