"""Structured tracing: nestable spans, point events, and an ambient context.

A :class:`Tracer` produces a stream of *records* — plain dicts with a
``type`` of ``"span"`` or ``"event"`` — that can be kept in memory for
tests, streamed to JSONL via :class:`repro.obs.export.JsonlTraceWriter`,
or both.  Spans nest through a context manager (or the :func:`traced`
decorator); point events capture instants such as every event the
discrete-event simulator pops.

The *ambient observation* (:func:`observe` / :func:`current_observation`)
is how instrumentation reaches code it does not call directly: the CLI
installs an :class:`Observation` around an experiment run, and any
:func:`repro.simulation.runner.simulate_allocation` performed underneath
it picks the tracer and registry up automatically.  When no observation
is active, every hook in the library resolves to ``None`` and the hot
paths skip instrumentation with a single ``is not None`` branch.
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

from repro.obs.metrics import MetricsRegistry

__all__ = ["Tracer", "TraceContext", "Observation", "SimulationObserver",
           "observe", "current_observation", "traced", "new_span_id"]


def new_span_id() -> str:
    """A fresh 16-hex-character span/trace identifier."""
    return uuid.uuid4().hex[:16]


class TraceContext:
    """A (trace_id, span_id) pair that crosses process boundaries.

    The batch engine attaches one to every worker task so the worker's
    tracer is *born linked*: its records carry the session's trace id,
    its root spans parent onto the span that dispatched them, and —
    because the context also carries the session tracer's monotonic
    ``epoch``, and ``time.perf_counter`` shares its base across
    processes on one machine — worker timestamps land directly in the
    session's time domain.  The payload is two short strings and a
    float, so it pickles/JSONs trivially.
    """

    __slots__ = ("trace_id", "span_id", "epoch")

    def __init__(self, trace_id: str, span_id: str | None = None,
                 epoch: float | None = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceContext(trace_id={self.trace_id!r}, "
                f"span_id={self.span_id!r}, epoch={self.epoch!r})")

    def __eq__(self, other: Any) -> bool:
        return (isinstance(other, TraceContext)
                and other.trace_id == self.trace_id
                and other.span_id == self.span_id
                and other.epoch == self.epoch)

    def __getstate__(self) -> tuple[str, str | None, float | None]:
        return (self.trace_id, self.span_id, self.epoch)

    def __setstate__(self, state: tuple[str, str | None, float | None]) -> None:
        self.trace_id, self.span_id, self.epoch = state


class Tracer:
    """Emits span/event records to an in-memory list and optional sinks.

    Records are dicts with stable keys:

    ``{"type": "span", "name", "ts", "dur", "depth", "attrs",
    "trace_id", "span_id", "parent_id"}``
        A closed span.  ``ts`` is seconds since the tracer's epoch
        (monotonic clock); ``dur`` is the span's wall duration.
        ``span_id`` is unique per span; ``parent_id`` is the enclosing
        span's id (or the tracer's ``root_parent_id`` for top-level
        spans, which is how cross-process trees link up).
    ``{"type": "event", "name", "ts", "depth", "attrs", "trace_id",
    "parent_id"}``
        A point event.  Simulation events carry their *simulated* time
        in ``attrs["t"]``; ``ts`` stays in the tracer's wall domain.
        Events carry no id of their own — they are leaves.

    Every record carries the tracer's ``trace_id``, so all spans of one
    run — including records ingested from worker processes — share one
    trace identity.
    """

    def __init__(self, sink: Callable[[dict], None] | None = None,
                 keep_records: bool = True, *,
                 trace_id: str | None = None,
                 root_parent_id: str | None = None) -> None:
        self._sinks: list[Callable[[dict], None]] = [sink] if sink else []
        self._keep = keep_records
        self._records: list[dict] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self.epoch = time.perf_counter()
        self.wall_epoch = time.time()
        self.trace_id = trace_id or new_span_id()
        self.root_parent_id = root_parent_id

    @classmethod
    def from_context(cls, context: TraceContext, **kwargs: Any) -> "Tracer":
        """A tracer whose records continue an existing trace.

        Adopting the context's ``epoch`` puts this tracer's timestamps
        in the originating tracer's time domain, so ingested worker
        records line up on one timeline.
        """
        tracer = cls(trace_id=context.trace_id,
                     root_parent_id=context.span_id, **kwargs)
        if context.epoch is not None:
            tracer.epoch = context.epoch
        return tracer

    def context(self) -> TraceContext:
        """The current propagation context: trace id + innermost span."""
        return TraceContext(self.trace_id, self.current_span_id(), self.epoch)

    # ------------------------------------------------------------------
    def _stack(self) -> list[tuple[str, str | None]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> str | None:
        """The id new child spans would be parented to on this thread."""
        stack = self._stack()
        return stack[-1][1] if stack else self.root_parent_id

    def _emit(self, record: dict) -> None:
        if self._keep:
            with self._lock:
                self._records.append(record)
        for sink in self._sinks:
            sink(record)

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        """Attach another record consumer (e.g. a JSONL writer)."""
        self._sinks.append(sink)

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[dict]:
        """Open a nested span; the record is emitted when the span closes.

        The yielded dict is the span's mutable ``attrs`` — handlers may
        add fields (row counts, outcomes) before the span closes.
        """
        stack = self._stack()
        depth = len(stack)
        span_id = new_span_id()
        parent_id = stack[-1][1] if stack else self.root_parent_id
        stack.append((name, span_id))
        start = time.perf_counter()
        try:
            yield attrs
        except BaseException:
            attrs.setdefault("error", True)
            raise
        finally:
            end = time.perf_counter()
            stack.pop()
            self._emit({"type": "span", "name": name,
                        "ts": start - self.epoch, "dur": end - start,
                        "depth": depth, "attrs": attrs,
                        "trace_id": self.trace_id, "span_id": span_id,
                        "parent_id": parent_id})

    @contextmanager
    def attach(self, parent_id: str | None) -> Iterator[None]:
        """Parent this thread's next top-level spans onto an existing id.

        How a span opened elsewhere — typically a pre-timed request span
        whose id was minted up front — adopts work performed on another
        thread (the service's executor-dispatched experiment runs).  No
        record is emitted for the attachment itself.
        """
        if parent_id is None:
            yield
            return
        stack = self._stack()
        stack.append(("<attached>", parent_id))
        try:
            yield
        finally:
            stack.pop()

    def record_span(self, name: str, *, duration: float,
                    ts: float | None = None, span_id: str | None = None,
                    parent_id: str | None = None, depth: int = 0,
                    attrs: dict[str, Any] | None = None) -> str:
        """Emit one already-timed span record; returns its span id.

        For callers that measure a duration themselves and must not
        touch the tracer's thread-local span stack — the asyncio serving
        layer, whose concurrent tasks interleave on one thread.  ``ts``
        defaults to "``duration`` seconds ago"; pass ``span_id`` when
        the id was minted up front so children could link to it while
        the span was still open.

        The emitted record is shaped exactly like :meth:`span`'s, so
        downstream consumers (store, exporters) cannot tell them apart.
        """
        span_id = span_id or new_span_id()
        if ts is None:
            ts = time.perf_counter() - duration - self.epoch
        self._emit({"type": "span", "name": name, "ts": ts,
                    "dur": duration, "depth": depth, "attrs": attrs or {},
                    "trace_id": self.trace_id, "span_id": span_id,
                    "parent_id": parent_id})
        return span_id

    def event(self, name: str, **attrs: Any) -> None:
        """Emit a point event at the current instant."""
        stack = self._stack()
        self._emit({"type": "event", "name": name,
                    "ts": time.perf_counter() - self.epoch,
                    "depth": len(stack), "attrs": attrs,
                    "trace_id": self.trace_id,
                    "parent_id": stack[-1][1] if stack
                    else self.root_parent_id})

    def ingest(self, records: Iterable[dict], *,
               parent_id: str | None = None, **extra_attrs: Any) -> int:
        """Re-emit records produced by another tracer (returns the count).

        The batch engine uses this to fold each worker's trace back into
        the session tracer: records keep their own ``ts``/``depth``
        (each worker has its own epoch and span stack), and any
        ``extra_attrs`` — typically a worker/task id — are merged into
        each record's ``attrs`` so the provenance survives.

        Ingested records are *re-linked* into this tracer's trace:
        every record's ``trace_id`` is rewritten to this tracer's, and
        records without a parent (foreign roots, or records from a
        pre-trace-identity tracer) are parented onto ``parent_id`` when
        given.  Workers whose tracers were built
        :meth:`from_context` arrive already linked and pass through
        unchanged apart from the attribute merge.
        """
        count = 0
        for record in records:
            merged = dict(record)
            if extra_attrs:
                merged["attrs"] = {**merged.get("attrs", {}), **extra_attrs}
            if merged.get("trace_id") != self.trace_id:
                merged["trace_id"] = self.trace_id
            if merged.get("parent_id") is None and parent_id is not None:
                merged["parent_id"] = parent_id
            self._emit(merged)
            count += 1
        return count

    # ------------------------------------------------------------------
    @property
    def records(self) -> tuple[dict, ...]:
        """Every record emitted so far (empty if ``keep_records=False``)."""
        with self._lock:
            return tuple(self._records)

    def records_named(self, name: str) -> list[dict]:
        """All records with the given name, in emission order."""
        return [r for r in self.records if r["name"] == name]

    @property
    def active_depth(self) -> int:
        """How many spans are currently open on this thread."""
        return len(self._stack())


class Observation:
    """A tracer/registry pair installed for the duration of a run."""

    __slots__ = ("tracer", "registry")

    def __init__(self, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.tracer = tracer
        self.registry = registry


_current: contextvars.ContextVar[Observation | None] = contextvars.ContextVar(
    "repro_observation", default=None)


def current_observation() -> Observation | None:
    """The ambient observation, or None when instrumentation is off."""
    return _current.get()


@contextmanager
def observe(observation: Observation) -> Iterator[Observation]:
    """Install ``observation`` as the ambient context for this block."""
    token = _current.set(observation)
    try:
        yield observation
    finally:
        _current.reset(token)


def traced(name: str | None = None) -> Callable:
    """Decorator: run the function inside a span on the ambient tracer.

    Resolution happens per call, so decorated functions stay no-ops when
    no observation is active — the disabled cost is one context-variable
    read.
    """
    def wrap(func: Callable) -> Callable:
        span_name = name or f"{func.__module__}.{func.__qualname__}"

        @functools.wraps(func)
        def inner(*args: Any, **kwargs: Any) -> Any:
            ctx = _current.get()
            if ctx is None or ctx.tracer is None:
                return func(*args, **kwargs)
            with ctx.tracer.span(span_name):
                return func(*args, **kwargs)
        inner.__traced__ = span_name  # type: ignore[attr-defined]
        return inner
    return wrap


class SimulationObserver:
    """Bridges live simulator callbacks to a tracer and a registry.

    The engine calls :meth:`on_event` on **every** event pop, so this
    class keeps per-call work minimal: tracer emission plus plain
    attribute bookkeeping; registry counters are updated once per run in
    :meth:`on_run_end`, not per event.
    """

    __slots__ = ("tracer", "registry", "events_seen", "peak_queue_depth",
                 "transits_seen", "_run_started_at", "last_run_wall_seconds")

    def __init__(self, tracer: Tracer | None = None,
                 registry: MetricsRegistry | None = None) -> None:
        self.tracer = tracer
        self.registry = registry
        self.events_seen = 0
        self.peak_queue_depth = 0
        self.transits_seen = 0
        self._run_started_at = 0.0
        self.last_run_wall_seconds = 0.0

    # -- engine hooks ---------------------------------------------------
    def on_run_start(self, sim: Any) -> None:
        self._run_started_at = time.perf_counter()
        if self.tracer is not None:
            self.tracer.event("sim.run_start", t=sim.now)

    def on_event(self, t: float, label: str, queue_depth: int) -> None:
        """One simulator event was popped at simulated time ``t``."""
        self.events_seen += 1
        if queue_depth > self.peak_queue_depth:
            self.peak_queue_depth = queue_depth
        if self.tracer is not None:
            self.tracer.event("sim.event", t=t, label=label,
                              queue_depth=queue_depth)

    def on_run_end(self, sim: Any) -> None:
        wall = time.perf_counter() - self._run_started_at
        self.last_run_wall_seconds = wall
        if self.tracer is not None:
            self.tracer.event("sim.run_end", t=sim.now,
                              events=sim.events_processed,
                              wall_seconds=wall)
        reg = self.registry
        if reg is not None:
            reg.counter("sim_runs_total",
                        "simulation runs executed").inc()
            reg.counter("sim_events_total",
                        "simulator events processed").inc(sim.events_processed)
            reg.gauge("sim_queue_depth_peak",
                      "peak event-queue depth of the most recent run"
                      ).set(sim.peak_queue_depth)
            if wall > 0 and sim.events_processed:
                reg.gauge("sim_events_per_second",
                          "event throughput of the most recent run"
                          ).set(sim.events_processed / wall)
            reg.timer("sim_run_seconds",
                      "wall-clock duration of simulation runs").observe(wall)

    # -- network hook ---------------------------------------------------
    def on_transit(self, transit: Any) -> None:
        """The shared channel granted one reservation."""
        self.transits_seen += 1
        if self.tracer is not None:
            self.tracer.event("sim.transit", kind=transit.kind,
                              computer=transit.computer,
                              start=transit.start, end=transit.end)
