"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while standard Python
errors (``TypeError`` from bad argument *types*, for instance) propagate
unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "InvalidProfileError",
    "InfeasibleScheduleError",
    "ProtocolError",
    "SimulationError",
    "SamplingError",
    "ExperimentError",
    "FaultInjectionError",
    "FaultSpecError",
    "RecoveryError",
    "CodedSchemeError",
    "StreamError",
    "StreamEventError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """An architectural model parameter (τ, π, δ, L, …) is out of range.

    Raised, for example, for a negative transit rate, for δ > 1 (the model
    requires each unit of work to produce at most one unit of results), or
    when a parameter combination violates the standing assumption
    ``τδ ≤ A ≤ B`` of Section 4 of the paper.
    """


class InvalidProfileError(ReproError, ValueError):
    """A heterogeneity profile violates the model's invariants.

    Profiles must be non-empty vectors of finite ρ-values with
    ``0 < ρᵢ`` for every computer; several operations additionally require
    values ``≤ 1`` (the paper's normalisation) or strict orderings.
    """


class InfeasibleScheduleError(ReproError, ValueError):
    """A worksharing schedule cannot be realised.

    Typical causes: a lifespan ``L`` too short for the requested protocol
    (Theorem 1 only applies to "sufficiently long" lifespans), or an
    allocation whose message timeline would need two messages in transit
    at once.
    """


class ProtocolError(ReproError, ValueError):
    """A worksharing protocol specification is malformed.

    For example a startup or finishing order that is not a permutation of
    the cluster's computers.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class SamplingError(ReproError, ValueError):
    """A random-profile sampler could not satisfy its constraints.

    The equal-mean pair generators, for instance, raise this when asked for
    a target mean that cannot be met with ρ-values in (0, 1].
    """


class ExperimentError(ReproError, RuntimeError):
    """An experiment was misconfigured or failed to produce a result."""


class FaultInjectionError(ReproError, ValueError):
    """A fault model or scenario is malformed.

    Raised for negative fault times, slowdown factors below 1, loss
    probabilities outside [0, 1), or faults addressed to computers the
    cluster does not have.
    """


class FaultSpecError(FaultInjectionError):
    """A textual ``--faults`` specification could not be parsed.

    See :func:`repro.faults.spec.parse_faults` for the grammar.
    """


class RecoveryError(ReproError, RuntimeError):
    """The recovery layer was misconfigured or reached an absurd state.

    Raised, for example, for a non-positive recovery-round budget or a
    detection timeout that is negative.
    """


class StreamError(ReproError, RuntimeError):
    """The streaming digital-twin layer was misconfigured.

    Raised, for example, for a non-positive window size or a replay
    source pointed at a stored run that recorded no events.
    """


class StreamEventError(StreamError, ValueError):
    """A stream event could not be parsed or validated.

    Messages name the line number and character offset of the defect
    (the same contract :func:`repro.faults.spec.parse_faults` gives
    fault clauses), and the CLI/service map the class to the
    invalid-input surface (exit code 2 / HTTP 400).
    """

    def __init__(self, message: str, *, field: str | None = None) -> None:
        super().__init__(message)
        #: The offending JSON field, when the defect is attributable to
        #: one — lets the line-level wrapper point at its char offset.
        self.field = field


class CodedSchemeError(ProtocolError):
    """A proactive-redundancy scheme is malformed.

    Raised for a replication factor below 1, an MDS scheme with
    ``k > n`` shares, or an unparseable ``--scheme`` string.  Subclasses
    :class:`ProtocolError`: a redundancy scheme is a statement about how
    work is laid out across the cluster, and the CLI/service map it to
    the same invalid-input surface (exit code 2 / HTTP 400).
    """
