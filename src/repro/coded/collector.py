"""Fastest-k completion semantics over simulated share deliveries.

A :class:`~repro.coded.schemes.CodedPlan` hands the simulator an
ordinary :class:`~repro.protocols.base.WorkAllocation` — every share is
just a quantum, so the full fault grammar (crash / outage / degraded /
channel loss + retransmission) applies unchanged.  What changes is the
*accounting*: a coded quantum is done at its k-th distinct share
delivery, not when any particular worker reports.  The
:class:`CodedCollector` replays a :class:`SimulationResult`'s worker
records against the plan's group structure and produces per-quantum
delivery timelines; :func:`simulate_coded` wraps run + collect and
publishes ``sim_coded_*`` counters and a ``sim.coded`` span through the
observability stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.coded.schemes import CodedPlan, CodedQuantum
from repro.faults.spec import FaultScenario, MaterializedFaults, parse_faults
from repro.obs.tracing import SimulationObserver, current_observation
from repro.simulation.runner import SimulationResult, simulate_allocation

__all__ = ["QuantumStatus", "CodedOutcome", "CodedCollector",
           "simulate_coded"]


@dataclass(frozen=True)
class QuantumStatus:
    """One coded quantum's observed delivery timeline.

    ``deliveries`` holds ``(computer, time)`` pairs for every member
    share that fully reached the server within the lifespan, sorted by
    arrival; the quantum decodes at the k-th entry.
    """

    quantum: CodedQuantum
    deliveries: tuple[tuple[int, float], ...]

    @property
    def completed(self) -> bool:
        return len(self.deliveries) >= self.quantum.k

    @property
    def completion_time(self) -> float:
        """Instant of the k-th distinct delivery (NaN if never reached)."""
        if not self.completed:
            return math.nan
        return self.deliveries[self.quantum.k - 1][1]


@dataclass(frozen=True)
class CodedOutcome:
    """A coded run: the raw simulation plus per-quantum decode status."""

    plan: CodedPlan
    result: SimulationResult
    statuses: tuple[QuantumStatus, ...]

    @property
    def completed_work(self) -> float:
        """Useful work units decoded (quanta that reached quorum)."""
        return float(sum(s.quantum.work for s in self.statuses
                         if s.completed))

    @property
    def completed_quanta(self) -> int:
        return sum(1 for s in self.statuses if s.completed)

    @property
    def shares_delivered(self) -> int:
        """Member shares that fully reached the server, decoded or not."""
        return sum(len(s.deliveries) for s in self.statuses)

    @property
    def delivered_share_work(self) -> float:
        """Work units of share mass the cluster actually delivered."""
        return float(sum(s.quantum.share * len(s.deliveries)
                         for s in self.statuses))

    @property
    def waste_work(self) -> float:
        """Delivered share mass that did not become useful decoded work."""
        return max(0.0, self.delivered_share_work - self.completed_work)

    @property
    def realized_waste_fraction(self) -> float:
        """``1 − useful/delivered`` over what actually arrived."""
        delivered = self.delivered_share_work
        if delivered <= 0.0:
            return 0.0
        return 1.0 - self.completed_work / delivered

    @property
    def makespan(self) -> float:
        """Last decode instant across completed quanta (0 if none)."""
        times = [s.completion_time for s in self.statuses if s.completed]
        return max(times) if times else 0.0


class CodedCollector:
    """Applies a plan's fastest-k semantics to simulated worker records."""

    def __init__(self, plan: CodedPlan) -> None:
        self._plan = plan

    def collect(self, result: SimulationResult) -> tuple[QuantumStatus, ...]:
        """Group ``result``'s completed shares into quantum timelines."""
        deliveries: dict[int, list[tuple[float, int]]] = {
            q.index: [] for q in self._plan.quanta}
        members = {q.index: set(q.members) for q in self._plan.quanta}
        for record in result.records:
            if not record.completed:
                continue
            q_index = self._plan.quantum_of[record.computer]
            if q_index < 0 or record.computer not in members[q_index]:
                continue
            deliveries[q_index].append(
                (float(record.result_end), record.computer))
        statuses = []
        for q in self._plan.quanta:
            arrived = sorted(deliveries[q.index])
            statuses.append(QuantumStatus(
                quantum=q,
                deliveries=tuple((c, t) for t, c in arrived)))
        return tuple(statuses)


def simulate_coded(plan: CodedPlan,
                   faults: "FaultScenario | MaterializedFaults | str | None" = None,
                   *, results_policy: str = "greedy",
                   observer: SimulationObserver | None = None,
                   engine: str | None = None) -> CodedOutcome:
    """Execute a coded plan under ``faults`` with fastest-k accounting.

    The share layout runs through :func:`simulate_allocation` with the
    skip-failed sequencer (a server running redundancy has, a fortiori,
    given up on the strict finishing-order contract), then the
    collector decides which quanta reached quorum.  Outcome metrics are
    recorded into the observer's (or ambient) registry as
    ``sim_coded_*`` counters, under a ``sim.coded`` span when a tracer
    is present.
    """
    if isinstance(faults, str):
        faults = parse_faults(faults)
    if isinstance(faults, FaultScenario):
        faults = faults.materialize(plan.allocation.n, plan.allocation.lifespan)

    tracer = observer.tracer if observer is not None else None
    if tracer is None:
        ctx = current_observation()
        tracer = ctx.tracer if ctx is not None else None

    def run() -> CodedOutcome:
        result = simulate_allocation(plan.allocation, faults=faults,
                                     results_policy=results_policy,
                                     skip_failed_results=True,
                                     observer=observer, engine=engine)
        statuses = CodedCollector(plan).collect(result)
        return CodedOutcome(plan=plan, result=result, statuses=statuses)

    if tracer is None:
        outcome = run()
    else:
        with tracer.span("sim.coded", scheme=plan.scheme.label,
                         quanta=len(plan.quanta)) as attrs:
            outcome = run()
            attrs["completed_quanta"] = outcome.completed_quanta
            attrs["completed_work"] = outcome.completed_work
            attrs["waste_work"] = outcome.waste_work
    _record_coded_metrics(outcome, observer)
    return outcome


def _record_coded_metrics(outcome: CodedOutcome,
                          observer: SimulationObserver | None) -> None:
    """Fold coded-run accounting into the observer or ambient registry."""
    registry = observer.registry if observer is not None else None
    if registry is None:
        ctx = current_observation()
        registry = ctx.registry if ctx is not None else None
    if registry is None:
        return
    registry.counter("sim_coded_quanta_total",
                     "coded quanta provisioned").inc(len(outcome.statuses))
    if outcome.completed_quanta:
        registry.counter("sim_coded_quanta_completed_total",
                         "coded quanta that reached their delivery quorum"
                         ).inc(outcome.completed_quanta)
    if outcome.shares_delivered:
        registry.counter("sim_coded_shares_delivered_total",
                         "coded shares fully delivered to the server"
                         ).inc(outcome.shares_delivered)
    if outcome.completed_work:
        registry.counter("sim_coded_work_completed_total",
                         "useful work units decoded from coded quanta"
                         ).inc(outcome.completed_work)
    if outcome.waste_work:
        registry.counter("sim_coded_waste_work_total",
                         "delivered share mass that decoded nothing"
                         ).inc(outcome.waste_work)
