"""Proactive-redundancy schemes: replication-r and MDS-coded worksharing.

The paper's CEP allocates every work unit exactly once, so a single
lost quantum forces the reactive detect→reschedule loop of
:mod:`repro.faults.recovery`.  The coded-computation literature
(Reisizadeh et al., *Coded Computation over Heterogeneous Clusters*;
Kim/Park/Choi, *Optimal Load Allocation for Coded Distributed
Computation in Heterogeneous Clusters*) attacks the same failure regime
*proactively*: send redundant or coded shares sized to each worker's
speed and accept the fastest responses, trading a bounded waste
fraction for tail latency that no longer depends on the slowest (or
deadest) worker.

Load-allocation rule
--------------------
Following Kim/Park/Choi, shares are sized to worker speed rather than
uniformly.  Concretely:

1. Compute the margin-provisioned FIFO base plan
   ``fifo_allocation(profile, params, margin · L)`` — the same
   headroom posture the recovery experiments run, so coded and
   recovery rows start from an identical feasible layout.
2. Sort workers by ρ (fastest first) and cut the sorted list into
   contiguous *redundancy groups* of ``group_size`` workers (``r`` for
   replication, ``n`` shares for MDS); a short trailing group keeps
   whatever workers remain.
3. Each group ``g`` forms one *quantum*.  Every member receives the
   same share ``s_g = min_{c ∈ g} w_base[c]`` — clipping to the
   group's slowest member only ever *shrinks* quanta relative to the
   feasible base plan, so the redundant layout stays schedulable.
4. The quantum's *useful* work is ``s_g`` for replication (any single
   delivery reconstructs it) and ``k_eff · s_g`` for MDS, where
   ``k_eff = min(k, |g|)`` handles the trailing group.

The *waste fraction* is ``1 − useful / sent`` where ``sent`` is the
total share mass actually transmitted: ``(r−1)/r`` for replication-r,
``(n−k)/n`` for MDS(k, n) on full groups.

The per-quantum expected-completion model is vectorised on
:class:`~repro.core.batch_kernels.ProfileBatch`: full groups stack into
one ``(groups, group_size)`` ρ-matrix whose derived ``Bρ`` column gives
every member's service estimate ``(Bρ + τδ)·s_g`` in two vector ops,
and the k-th order statistic per row is the quantum's expected
completion — the fastest-k semantics before any fault is injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.batch_kernels import ProfileBatch
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import CodedSchemeError
from repro.protocols.base import WorkAllocation
from repro.protocols.fifo import fifo_allocation

__all__ = ["CodedQuantum", "CodedPlan", "ReplicationScheme", "MDSScheme",
           "RedundancyScheme", "parse_scheme", "scheme_from_spec"]

#: Default provisioning headroom, matching the failure-resilience
#: experiments: allocate for ``margin · L``, judge against the full L.
DEFAULT_MARGIN = 0.8


@dataclass(frozen=True)
class CodedQuantum:
    """One unit of redundantly-provisioned work.

    Attributes
    ----------
    index:
        Position in the plan's quantum list.
    members:
        Profile indices of the workers holding this quantum's shares.
    k:
        Distinct deliveries needed to reconstruct the quantum.
    share:
        Work units each member computes (the coded share size).
    work:
        Useful work units the quantum carries once decoded
        (``share`` for replication, ``k·share`` for MDS).
    """

    index: int
    members: tuple[int, ...]
    k: int
    share: float
    work: float

    @property
    def sent_work(self) -> float:
        """Total share mass transmitted for this quantum."""
        return self.share * len(self.members)


@dataclass(frozen=True)
class CodedPlan:
    """A redundancy scheme compiled against a concrete cluster.

    Wraps a :class:`~repro.protocols.base.WorkAllocation` (every share
    is an ordinary quantum to the simulator) plus the coded structure
    the collector needs to apply fastest-k completion semantics.
    """

    scheme: "RedundancyScheme"
    allocation: WorkAllocation
    quanta: tuple[CodedQuantum, ...]
    #: Model estimate of each quantum's k-th-fastest service time
    #: (fault-free), aligned with ``quanta``.
    expected_latency: tuple[float, ...] = ()
    margin: float = DEFAULT_MARGIN
    #: quantum_of[c] = index of the quantum computer c serves, -1 if none.
    quantum_of: tuple[int, ...] = field(default=(), repr=False)

    @property
    def useful_work(self) -> float:
        """Decoded work units if every quantum completes."""
        return float(sum(q.work for q in self.quanta))

    @property
    def sent_work(self) -> float:
        """Total share mass transmitted (the allocation's total work)."""
        return float(sum(q.sent_work for q in self.quanta))

    @property
    def expected_waste_fraction(self) -> float:
        """``1 − useful/sent`` — the price of the redundancy."""
        sent = self.sent_work
        return 1.0 - self.useful_work / sent if sent > 0.0 else 0.0

    def as_dict(self) -> dict:
        """JSON-friendly summary (service responses, experiment metadata)."""
        return {
            "scheme": self.scheme.label,
            "kind": self.scheme.kind,
            "margin": self.margin,
            "useful_work": self.useful_work,
            "sent_work": self.sent_work,
            "expected_waste_fraction": self.expected_waste_fraction,
            "quanta": [{"index": q.index, "members": list(q.members),
                        "k": q.k, "share": q.share, "work": q.work}
                       for q in self.quanta],
            "expected_latency": list(self.expected_latency),
        }


def _expected_latencies(groups: Sequence[tuple[int, ...]],
                        shares: Sequence[float], ks: Sequence[int],
                        rho: np.ndarray, params: ModelParams) -> list[float]:
    """Model estimate of each quantum's k-th-fastest service time.

    Same-size groups are stacked into one :class:`ProfileBatch` so the
    ``Bρ + τδ`` factor comes out of the cached derived columns in a
    single vector op; odd-size trailing groups fall back to the same
    arithmetic on their own (smaller) batch.
    """
    latencies = [0.0] * len(groups)
    by_size: dict[int, list[int]] = {}
    for i, members in enumerate(groups):
        by_size.setdefault(len(members), []).append(i)
    td = params.tau_delta
    for size, indices in by_size.items():
        batch = ProfileBatch(
            np.array([[rho[c] for c in groups[i]] for i in indices]))
        # Per-member service estimate: unpackage+compute+package plus the
        # result transit, linear in the share — (Bρ + τδ)·s.
        per_member = batch.columns(params).b_rho + td
        share_col = np.array([shares[i] for i in indices])[:, None]
        times = np.sort(per_member * share_col, axis=1)
        for row, i in enumerate(indices):
            k_eff = min(ks[i], size)
            latencies[i] = float(times[row, k_eff - 1])
    return latencies


class RedundancyScheme:
    """Base class: a redundancy layout over speed-sorted worker groups.

    Subclasses fix the group size, the per-quantum delivery quorum
    ``k``, and a human-readable label; :meth:`plan` implements the
    shared Kim/Park/Choi-style load-allocation rule (module docstring).
    """

    kind: str = "abstract"

    @property
    def group_size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def quorum(self, group_size: int) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def label(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError

    def plan(self, profile: Profile, params: ModelParams, lifespan: float,
             *, margin: float = DEFAULT_MARGIN) -> CodedPlan:
        """Compile the scheme into a :class:`CodedPlan` for this cluster."""
        if not (0.0 < margin <= 1.0):
            raise CodedSchemeError(
                f"margin must lie in (0, 1], got {margin!r}")
        if profile.n < self.group_size:
            raise CodedSchemeError(
                f"{self.label} needs at least {self.group_size} workers, "
                f"profile has {profile.n}")
        base = fifo_allocation(profile, params, margin * lifespan)
        rho = profile.rho
        # Fastest workers first, ties broken by index for determinism.
        order = sorted(range(profile.n), key=lambda c: (rho[c], c))

        w = np.zeros(profile.n)
        groups: list[tuple[int, ...]] = []
        shares: list[float] = []
        ks: list[int] = []
        quanta: list[CodedQuantum] = []
        quantum_of = [-1] * profile.n
        for start in range(0, profile.n, self.group_size):
            members = tuple(order[start:start + self.group_size])
            share = float(min(base.w[c] for c in members))
            if share <= 0.0:
                continue
            k_eff = self.quorum(len(members))
            index = len(quanta)
            for c in members:
                w[c] = share
                quantum_of[c] = index
            groups.append(members)
            shares.append(share)
            ks.append(k_eff)
            quanta.append(CodedQuantum(index=index, members=members,
                                       k=k_eff, share=share,
                                       work=k_eff * share))
        if not quanta:
            raise CodedSchemeError(
                f"{self.label} produced no nonzero quanta "
                f"(lifespan {lifespan!r} too short?)")
        allocation = WorkAllocation(
            profile=profile, params=params, lifespan=lifespan, w=w,
            startup_order=base.startup_order,
            finishing_order=base.finishing_order,
            protocol_name=f"coded-{self.label}")
        latencies = _expected_latencies(groups, shares, ks, rho, params)
        return CodedPlan(scheme=self, allocation=allocation,
                         quanta=tuple(quanta),
                         expected_latency=tuple(latencies), margin=margin,
                         quantum_of=tuple(quantum_of))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.label!r})"


@dataclass(frozen=True, repr=False)
class ReplicationScheme(RedundancyScheme):
    """Each quantum is sent verbatim to ``r`` workers; first delivery wins."""

    r: int = 2
    kind: str = field(default="replication", init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.r, int) or self.r < 1:
            raise CodedSchemeError(
                f"replication factor must be an integer >= 1, got {self.r!r}")

    @property
    def group_size(self) -> int:
        return self.r

    def quorum(self, group_size: int) -> int:
        return 1

    @property
    def label(self) -> str:
        return f"replication-{self.r}"


@dataclass(frozen=True, repr=False)
class MDSScheme(RedundancyScheme):
    """MDS(k, n): ``shares`` coded shares per quantum, any ``k`` decode it."""

    k: int = 2
    shares: int = 3
    kind: str = field(default="mds", init=False)

    def __post_init__(self) -> None:
        if not isinstance(self.k, int) or not isinstance(self.shares, int):
            raise CodedSchemeError(
                f"MDS parameters must be integers, got k={self.k!r}, "
                f"n={self.shares!r}")
        if self.k < 1 or self.shares < self.k:
            raise CodedSchemeError(
                f"MDS needs 1 <= k <= n, got k={self.k}, n={self.shares}")

    @property
    def group_size(self) -> int:
        return self.shares

    def quorum(self, group_size: int) -> int:
        return min(self.k, group_size)

    @property
    def label(self) -> str:
        return f"mds-{self.k}/{self.shares}"


def parse_scheme(text: str) -> RedundancyScheme:
    """Parse the compact ``--scheme`` grammar.

    ``replication:<r>`` — each quantum replicated across r workers;
    ``mds:<k>/<n>`` — n coded shares per quantum, any k suffice.

    Raises
    ------
    CodedSchemeError
        On any malformed specification — the CLI maps this to exit
        code 2 (invalid input), the service to HTTP 400.
    """
    spec = text.strip().lower()
    head, sep, body = spec.partition(":")
    if not sep:
        raise CodedSchemeError(
            f"unparseable scheme {text!r}: expected 'replication:<r>' "
            f"or 'mds:<k>/<n>'")
    if head == "replication":
        try:
            return ReplicationScheme(int(body))
        except ValueError:
            raise CodedSchemeError(
                f"bad replication factor {body!r} in scheme {text!r}"
            ) from None
    if head == "mds":
        k_str, sep, n_str = body.partition("/")
        if not sep:
            raise CodedSchemeError(
                f"mds scheme must be mds:<k>/<n>, got {text!r}")
        try:
            return MDSScheme(int(k_str), int(n_str))
        except ValueError:
            raise CodedSchemeError(
                f"bad mds parameters {body!r} in scheme {text!r}") from None
    raise CodedSchemeError(
        f"unknown scheme kind {head!r} in {text!r}: expected "
        f"'replication' or 'mds'")


def scheme_from_spec(spec: "str | RedundancyScheme | Sequence") -> RedundancyScheme:
    """Coerce a scheme spec — string, tuple, or scheme — to a scheme.

    Tuple forms are the service layer's canonical payloads:
    ``("replication", r)`` and ``("mds", k, n)``.
    """
    if isinstance(spec, RedundancyScheme):
        return spec
    if isinstance(spec, str):
        return parse_scheme(spec)
    try:
        kind, *rest = spec
    except TypeError:
        raise CodedSchemeError(f"unparseable scheme spec {spec!r}") from None
    if kind == "replication" and len(rest) == 1:
        return ReplicationScheme(int(rest[0]))
    if kind == "mds" and len(rest) == 2:
        return MDSScheme(int(rest[0]), int(rest[1]))
    raise CodedSchemeError(f"unparseable scheme spec {spec!r}")
