"""Proactive redundancy: replication-r and MDS-coded worksharing.

The reactive posture (:mod:`repro.faults.recovery`) detects lost work
and reschedules it; this package provisions against loss up front —
each quantum is sent redundantly (replication) or as coded shares
(MDS), speed-sized over the heterogeneity profile, and declared done at
its k-th distinct delivery.  See ``docs/FAULTS.md`` § "Proactive
redundancy" for the scheme grammar and the waste-vs-tail-latency
tradeoff, and the ``coded-resilience`` experiment for the head-to-head
comparison against detect→reschedule recovery.
"""

from repro.coded.collector import (CodedCollector, CodedOutcome,
                                   QuantumStatus, simulate_coded)
from repro.coded.schemes import (DEFAULT_MARGIN, CodedPlan, CodedQuantum,
                                 MDSScheme, RedundancyScheme,
                                 ReplicationScheme, parse_scheme,
                                 scheme_from_spec)

__all__ = [
    "CodedCollector",
    "CodedOutcome",
    "CodedPlan",
    "CodedQuantum",
    "DEFAULT_MARGIN",
    "MDSScheme",
    "QuantumStatus",
    "RedundancyScheme",
    "ReplicationScheme",
    "parse_scheme",
    "scheme_from_spec",
    "simulate_coded",
]
