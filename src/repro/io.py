"""Serialisation round-trips for the core value objects.

Pipelines need to persist profiles, environments and schedules between
processes (a planner writes an allocation, an executor replays it).
These functions produce plain-dict representations — stable keys, JSON
types only — and reconstruct validated objects on the way back in.

All ``from_dict`` constructors run the same validation as the public
constructors, so a hand-edited or corrupted file fails loudly rather
than producing an impossible schedule.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.protocols.base import WorkAllocation

__all__ = [
    "profile_to_dict", "profile_from_dict",
    "params_to_dict", "params_from_dict",
    "allocation_to_dict", "allocation_from_dict",
    "save_allocation", "load_allocation",
    "result_to_dict", "result_from_dict", "results_to_json",
]

_SCHEMA_VERSION = 1


def profile_to_dict(profile: Profile) -> dict[str, Any]:
    """Plain-dict form of a profile."""
    return {"rho": [float(r) for r in profile]}


def profile_from_dict(data: dict[str, Any]) -> Profile:
    """Rebuild (and re-validate) a profile."""
    try:
        return Profile(data["rho"])
    except KeyError as exc:
        raise InvalidParameterError(f"profile dict missing key: {exc}") from exc


def params_to_dict(params: ModelParams) -> dict[str, Any]:
    """Plain-dict form of the environment parameters."""
    return {"tau": params.tau, "pi": params.pi, "delta": params.delta}


def params_from_dict(data: dict[str, Any]) -> ModelParams:
    """Rebuild (and re-validate) environment parameters."""
    try:
        return ModelParams(tau=data["tau"], pi=data["pi"], delta=data["delta"])
    except KeyError as exc:
        raise InvalidParameterError(f"params dict missing key: {exc}") from exc


def allocation_to_dict(allocation: WorkAllocation) -> dict[str, Any]:
    """Plain-dict form of a work allocation (schedule)."""
    return {
        "schema_version": _SCHEMA_VERSION,
        "profile": profile_to_dict(allocation.profile),
        "params": params_to_dict(allocation.params),
        "lifespan": allocation.lifespan,
        "w": [float(x) for x in allocation.w],
        "startup_order": list(allocation.startup_order),
        "finishing_order": list(allocation.finishing_order),
        "protocol_name": allocation.protocol_name,
    }


def allocation_from_dict(data: dict[str, Any]) -> WorkAllocation:
    """Rebuild (and re-validate) a work allocation."""
    version = data.get("schema_version", _SCHEMA_VERSION)
    if version != _SCHEMA_VERSION:
        raise InvalidParameterError(
            f"unsupported allocation schema version {version!r} "
            f"(this build reads {_SCHEMA_VERSION})")
    try:
        return WorkAllocation(
            profile=profile_from_dict(data["profile"]),
            params=params_from_dict(data["params"]),
            lifespan=float(data["lifespan"]),
            w=np.asarray(data["w"], dtype=float),
            startup_order=tuple(data["startup_order"]),
            finishing_order=tuple(data["finishing_order"]),
            protocol_name=str(data.get("protocol_name", "custom")),
        )
    except KeyError as exc:
        raise InvalidParameterError(f"allocation dict missing key: {exc}") from exc


def result_to_dict(result: Any) -> dict[str, Any]:
    """Plain-dict form of an :class:`~repro.experiments.base.ExperimentResult`.

    JSON-safe throughout (NumPy scalars, Fractions, dataclasses and the
    library's value objects are converted) — the CLI's ``--json`` output
    and any downstream pipeline read this shape.
    """
    from repro.experiments.export import jsonable
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [jsonable(row) for row in result.rows],
        "notes": list(result.notes),
        "metadata": jsonable(result.metadata),
    }


def _restore_nonfinite(value: Any) -> Any:
    """Recursively turn ``{"__nonfinite__": ...}`` sentinels back into
    their floats (NaN/±inf), leaving everything else untouched."""
    from repro.experiments.export import nonfinite_to_float
    restored = nonfinite_to_float(value)
    if restored is not None:
        return restored
    if isinstance(value, dict):
        return {k: _restore_nonfinite(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_restore_nonfinite(v) for v in value]
    return value


def result_from_dict(data: dict[str, Any]) -> Any:
    """Rebuild an :class:`~repro.experiments.base.ExperimentResult`.

    The inverse of :func:`result_to_dict` *up to JSON fidelity*: rows
    come back as tuples of plain JSON values and metadata as plain
    dicts/lists (NumPy arrays and dataclasses do not round-trip — they
    were flattened on the way out).  Non-finite floats *do* round-trip:
    the ``{"__nonfinite__": ...}`` sentinels ``jsonable`` emitted are
    restored to their NaN/±inf here.  Re-serialising the rebuilt result
    therefore reproduces the original document byte for byte, which is
    the property the batch result cache relies on.
    """
    from repro.experiments.base import ExperimentResult
    try:
        return ExperimentResult(
            experiment_id=str(data["experiment_id"]),
            title=str(data["title"]),
            headers=tuple(data["headers"]),
            rows=tuple(tuple(_restore_nonfinite(cell) for cell in row)
                       for row in data["rows"]),
            notes=tuple(data.get("notes", ())),
            metadata=_restore_nonfinite(dict(data.get("metadata", {}))),
        )
    except KeyError as exc:
        raise InvalidParameterError(f"result dict missing key: {exc}") from exc


def results_to_json(results: list[Any], *, indent: int = 2) -> str:
    """Serialise several experiment results as one JSON array document."""
    return json.dumps([result_to_dict(r) for r in results], indent=indent,
                      allow_nan=False)


def save_allocation(allocation: WorkAllocation, path: str) -> None:
    """Write a schedule to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(allocation_to_dict(allocation), fh, indent=2)


def load_allocation(path: str) -> WorkAllocation:
    """Read a schedule back from a JSON file (validated)."""
    with open(path, "r", encoding="utf-8") as fh:
        return allocation_from_dict(json.load(fh))
