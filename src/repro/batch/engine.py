"""Process-pool batch execution of registered experiments.

The engine behind ``repro-hetero run all --jobs N``: it fans registered
experiments — and, for experiments with a
:class:`~repro.experiments.base.ShardSpec`, their independent trial
shards — out across a pool of worker processes, then reassembles
everything in the parent.

Design invariants, in order of importance:

* **determinism** — ``--jobs N`` must be row-for-row identical to
  ``--jobs 1``.  Shard plans are pure functions of the experiment
  kwargs (never of the worker count), every shard carries its own
  ``SeedSequence``-spawned seed, and merges always happen in shard
  order, so how the shards land on workers cannot change the result.
* **truthful observability** — each worker task runs inside its own
  :class:`~repro.obs.tracing.Observation`; its metrics registry dump
  and trace records travel back with the payload and are folded into
  the session registry/tracer, so PR 1's instrumentation reports the
  same series under parallelism as it does sequentially.
* **isolation of failures** — one failing experiment (or shard) marks
  that experiment failed and the batch carries on, exactly like the
  sequential CLI loop.

Dispatch is straggler-aware in the LPT sense: tasks are submitted
longest-estimated-first so a slow shard starts early instead of
dangling off the end of the schedule.  The estimates are heuristic and
affect only scheduling quality, never results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import InvalidParameterError
from repro.experiments.base import (ExperimentResult, _peak_rss_bytes,
                                    get_shard_spec, record_experiment_metrics,
                                    run_experiment)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Observation, Tracer, current_observation, observe

from repro.batch.cache import ResultCache

__all__ = ["BatchItem", "BatchReport", "run_batch"]

#: Rough relative costs of the unshardable experiments (arbitrary units
#: comparable to a shard's ``chunk_trials * n``), measured once on the
#: reference box.  Used only to order submissions (LPT); an absent or
#: stale entry costs scheduling quality, nothing else.
_COST_HINTS = {
    "moment-ablation": 30_000,
    "failure-rate-sweep": 27_000,
    "protocol-optimality": 15_000,
    "heterogeneity-gain": 3_500,
    "fig4": 1_000,
    "fig3": 700,
}


@dataclass(frozen=True)
class _Task:
    """One unit of worker-pool work: a whole experiment or one shard."""

    experiment_id: str
    kwargs: dict[str, Any]
    shard_index: int | None = None  # None -> run the whole experiment
    capture_trace: bool = False

    @property
    def cost(self) -> float:
        """Heuristic runtime estimate for LPT submission order."""
        if self.shard_index is not None:
            trials = self.kwargs.get("chunk_trials")
            if trials is not None:
                return float(trials) * float(self.kwargs.get("n", 1))
            return 50.0
        return float(_COST_HINTS.get(self.experiment_id, 100.0))


@dataclass
class _TaskOutput:
    experiment_id: str
    shard_index: int | None
    value: Any = None
    error: str | None = None
    wall_seconds: float = 0.0
    rss_delta_bytes: int | None = None
    worker_pid: int = 0
    metrics_dump: dict | None = None
    trace_records: tuple = ()


def _execute_task(task: _Task) -> _TaskOutput:
    """Worker-side entry point: run one task inside its own observation.

    Must stay importable at module level (the pool pickles a reference,
    not the function) and must never raise — errors come back as data
    so one bad experiment cannot take the pool down.
    """
    registry = MetricsRegistry()
    tracer = Tracer(keep_records=True) if task.capture_trace else None
    rss_before = _peak_rss_bytes()
    start = time.perf_counter()
    out = _TaskOutput(experiment_id=task.experiment_id,
                      shard_index=task.shard_index, worker_pid=os.getpid())
    with observe(Observation(tracer=tracer, registry=registry)):
        try:
            if task.shard_index is None:
                out.value = run_experiment(task.experiment_id, **task.kwargs)
            else:
                spec = get_shard_spec(task.experiment_id)
                if spec is None:  # pragma: no cover - defensive
                    raise InvalidParameterError(
                        f"experiment {task.experiment_id!r} has no shard spec")
                name = f"shard:{task.experiment_id}[{task.shard_index}]"
                if tracer is not None:
                    with tracer.span(name):
                        out.value = spec.runner(**task.kwargs)
                else:
                    out.value = spec.runner(**task.kwargs)
                registry.counter(
                    "experiment_shards_total", "experiment shards completed"
                ).inc(experiment=task.experiment_id)
        except Exception as exc:
            out.error = f"{type(exc).__name__}: {exc}"
            out.value = None
            traceback.clear_frames(exc.__traceback__)
    out.wall_seconds = time.perf_counter() - start
    rss_after = _peak_rss_bytes()
    if rss_before is not None and rss_after is not None:
        out.rss_delta_bytes = max(0, rss_after - rss_before)
    out.metrics_dump = registry.dump()
    if tracer is not None:
        out.trace_records = tracer.records
    return out


@dataclass
class BatchItem:
    """Outcome of one experiment within a batch."""

    experiment_id: str
    result: ExperimentResult | None = None
    error: str | None = None
    cached: bool = False
    shards: int = 0
    wall_seconds: float = 0.0


@dataclass
class BatchReport:
    """Everything ``run_batch`` did, in input order."""

    items: list[BatchItem] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def results(self) -> list[ExperimentResult]:
        return [item.result for item in self.items if item.result is not None]

    @property
    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if item.error is not None]


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """Prefer fork: workers inherit the loaded interpreter (no re-import
    tax) and any in-process experiment registrations, e.g. from tests."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - non-POSIX platforms


def run_batch(experiment_ids: Sequence[str], *,
              kwargs_by_id: Mapping[str, dict[str, Any]] | None = None,
              jobs: int = 1,
              cache: ResultCache | None = None) -> BatchReport:
    """Run experiments (optionally sharded) across a worker pool.

    Parameters
    ----------
    experiment_ids:
        Registered ids, executed/reported in this order.
    kwargs_by_id:
        Keyword overrides per experiment (the CLI's sampling flags).
    jobs:
        Worker processes.  ``1`` runs everything in-process — same
        decomposition, same seeds, same merge — which is both the
        compatibility path and the honest baseline for speedup claims.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back.

    Observability: metrics and (when a tracer is ambient) trace records
    from every worker are merged into the session's ambient observation
    or the process-global default registry.
    """
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    kwargs_by_id = dict(kwargs_by_id or {})
    ctx = current_observation()
    registry = (ctx.registry if ctx is not None and ctx.registry is not None
                else default_registry())
    tracer = ctx.tracer if ctx is not None else None

    report = BatchReport(jobs=jobs)
    batch_start = time.perf_counter()
    items: dict[str, BatchItem] = {}
    pending: list[str] = []
    for experiment_id in experiment_ids:
        item = BatchItem(experiment_id=experiment_id)
        items[experiment_id] = item
        report.items.append(item)
        kwargs = kwargs_by_id.get(experiment_id, {})
        cached = cache.get(experiment_id, kwargs) if cache is not None else None
        if cached is not None:
            item.result = cached
            item.cached = True
            report.cache_hits += 1
            registry.counter("batch_cache_hits_total",
                             "batch results served from the on-disk cache"
                             ).inc(experiment=experiment_id)
            continue
        if cache is not None:
            report.cache_misses += 1
            registry.counter("batch_cache_misses_total",
                             "batch results not found in the on-disk cache"
                             ).inc(experiment=experiment_id)
        pending.append(experiment_id)

    if jobs == 1:
        for experiment_id in pending:
            item = items[experiment_id]
            start = time.perf_counter()
            try:
                item.result = run_experiment(experiment_id,
                                             **kwargs_by_id.get(experiment_id, {}))
            except Exception as exc:
                item.error = f"{type(exc).__name__}: {exc}"
            item.wall_seconds = time.perf_counter() - start
    elif pending:
        _run_pool(pending, kwargs_by_id, jobs, items, registry, tracer)

    if cache is not None:
        for experiment_id in pending:
            item = items[experiment_id]
            if item.result is not None:
                cache.put(experiment_id, kwargs_by_id.get(experiment_id, {}),
                          item.result)

    report.wall_seconds = time.perf_counter() - batch_start
    registry.counter("batch_runs_total", "batch invocations").inc()
    registry.timer("batch_seconds", "wall-clock duration of batch runs"
                   ).observe(report.wall_seconds)
    return report


def _run_pool(pending: Sequence[str], kwargs_by_id: Mapping[str, dict],
              jobs: int, items: Mapping[str, BatchItem],
              registry: MetricsRegistry, tracer: Tracer | None) -> None:
    """Execute the cache-missed experiments on a process pool."""
    capture = tracer is not None
    tasks: list[_Task] = []
    shard_specs: dict[str, Any] = {}
    shard_counts: dict[str, int] = {}
    for experiment_id in pending:
        kwargs = kwargs_by_id.get(experiment_id, {})
        spec = get_shard_spec(experiment_id)
        if spec is not None:
            try:
                shards = spec.split(**kwargs)
            except Exception as exc:
                items[experiment_id].error = f"{type(exc).__name__}: {exc}"
                continue
            shard_specs[experiment_id] = spec
            shard_counts[experiment_id] = len(shards)
            items[experiment_id].shards = len(shards)
            tasks.extend(
                _Task(experiment_id, shard_kwargs, shard_index=index,
                      capture_trace=capture)
                for index, shard_kwargs in enumerate(shards))
        else:
            tasks.append(_Task(experiment_id, kwargs, capture_trace=capture))

    outputs: dict[tuple[str, int | None], _TaskOutput] = {}
    submission_order = sorted(tasks, key=lambda t: t.cost, reverse=True)
    with ProcessPoolExecutor(max_workers=jobs,
                             mp_context=_pool_context()) as pool:
        futures = {pool.submit(_execute_task, task): task
                   for task in submission_order}
        for future, task in futures.items():
            try:
                output = future.result()
            except Exception as exc:  # BrokenProcessPool and friends
                output = _TaskOutput(experiment_id=task.experiment_id,
                                     shard_index=task.shard_index,
                                     error=f"{type(exc).__name__}: {exc}")
            outputs[(task.experiment_id, task.shard_index)] = output
            if output.metrics_dump:
                registry.merge(output.metrics_dump)
            if tracer is not None and output.trace_records:
                tracer.ingest(output.trace_records,
                              worker_pid=output.worker_pid)

    for experiment_id in pending:
        item = items[experiment_id]
        if item.error is not None:  # split() already failed
            continue
        if experiment_id not in shard_specs:
            output = outputs[(experiment_id, None)]
            item.wall_seconds = output.wall_seconds
            if output.error is not None:
                item.error = output.error
            else:
                item.result = output.value
            continue
        shard_outputs = [outputs[(experiment_id, index)]
                         for index in range(shard_counts[experiment_id])]
        item.wall_seconds = sum(o.wall_seconds for o in shard_outputs)
        errors = [o.error for o in shard_outputs if o.error is not None]
        if errors:
            item.error = errors[0]
            registry.counter("experiment_failures_total",
                             "experiment runs that raised"
                             ).inc(experiment=experiment_id)
            continue
        spec = shard_specs[experiment_id]
        kwargs = kwargs_by_id.get(experiment_id, {})
        try:
            merged = spec.merge([o.value for o in shard_outputs], **kwargs)
        except Exception as exc:
            item.error = f"{type(exc).__name__}: {exc}"
            registry.counter("experiment_failures_total",
                             "experiment runs that raised"
                             ).inc(experiment=experiment_id)
            continue
        record_experiment_metrics(registry, experiment_id, item.wall_seconds)
        rss_deltas = [o.rss_delta_bytes for o in shard_outputs
                      if o.rss_delta_bytes is not None]
        obs_block = {
            # Aggregate worker-side compute seconds (the shards ran
            # concurrently, so this is CPU time, not elapsed time).
            "wall_seconds": item.wall_seconds,
            # Largest high-water-mark rise any worker attributed to a
            # shard of this experiment — per-worker RSS, not inherited
            # from whatever ran before in the parent.
            "peak_rss_bytes": max(rss_deltas) if rss_deltas else None,
            "shards": len(shard_outputs),
        }
        item.result = replace(
            merged, metadata={**merged.metadata, "obs": obs_block})
