"""Process-pool batch execution of registered experiments.

The engine behind ``repro-hetero run all --jobs N``: it fans registered
experiments — and, for experiments with a
:class:`~repro.experiments.base.ShardSpec`, their independent trial
shards — out across a pool of worker processes, then reassembles
everything in the parent.

Design invariants, in order of importance:

* **determinism** — ``--jobs N`` must be row-for-row identical to
  ``--jobs 1``.  Shard plans are pure functions of the experiment
  kwargs (never of the worker count), every shard carries its own
  ``SeedSequence``-spawned seed, and merges always happen in shard
  order, so how the shards land on workers cannot change the result.
* **truthful observability** — each worker task runs inside its own
  :class:`~repro.obs.tracing.Observation`; its metrics registry dump
  and trace records travel back with the payload and are folded into
  the session registry/tracer, so PR 1's instrumentation reports the
  same series under parallelism as it does sequentially.
* **isolation of failures** — one failing experiment (or shard) marks
  that experiment failed and the batch carries on, exactly like the
  sequential CLI loop.
* **survival** — a worker that crashes (``BrokenProcessPool``), hangs
  past ``task_timeout``, or fails transiently does not doom the batch:
  failed attempts are retried with exponential backoff up to the
  ``retries`` budget, the pool is respawned (in-flight tasks requeued)
  up to ``max_pool_respawns`` times, and past that the engine degrades
  gracefully to sequential in-process execution with a warning.  Every
  recovery action is surfaced as a ``batch_*`` counter.

Dispatch is straggler-aware in the LPT sense: tasks are submitted
longest-estimated-first so a slow shard starts early instead of
dangling off the end of the schedule.  The estimates are heuristic and
affect only scheduling quality, never results.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.errors import InvalidParameterError
from repro.experiments.base import (ExperimentResult, _peak_rss_bytes,
                                    get_shard_spec, record_experiment_metrics,
                                    run_experiment)
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import (Observation, TraceContext, Tracer,
                               current_observation, observe)

from repro.batch.cache import ResultCache

__all__ = ["BatchItem", "BatchReport", "run_batch"]

#: Rough relative costs of the unshardable experiments (arbitrary units
#: comparable to a shard's ``chunk_trials * n``), measured once on the
#: reference box.  Used only to order submissions (LPT); an absent or
#: stale entry costs scheduling quality, nothing else.
_COST_HINTS = {
    "moment-ablation": 30_000,
    "failure-rate-sweep": 27_000,
    "protocol-optimality": 15_000,
    "heterogeneity-gain": 3_500,
    "fig4": 1_000,
    "fig3": 700,
}


@dataclass(frozen=True)
class _Task:
    """One unit of worker-pool work: a whole experiment or one shard."""

    experiment_id: str
    kwargs: dict[str, Any]
    shard_index: int | None = None  # None -> run the whole experiment
    capture_trace: bool = False
    #: Parent trace context (trace id, enclosing span id, clock epoch).
    #: When set, the worker's tracer is born linked to the session's
    #: span tree instead of minting a disconnected trace of its own.
    trace_context: TraceContext | None = None

    @property
    def cost(self) -> float:
        """Heuristic runtime estimate for LPT submission order."""
        if self.shard_index is not None:
            trials = self.kwargs.get("chunk_trials")
            if trials is not None:
                return float(trials) * float(self.kwargs.get("n", 1))
            return 50.0
        return float(_COST_HINTS.get(self.experiment_id, 100.0))


@dataclass
class _TaskOutput:
    experiment_id: str
    shard_index: int | None
    value: Any = None
    error: str | None = None
    wall_seconds: float = 0.0
    rss_delta_bytes: int | None = None
    worker_pid: int = 0
    metrics_dump: dict | None = None
    trace_records: tuple = ()


def _execute_task(task: _Task) -> _TaskOutput:
    """Worker-side entry point: run one task inside its own observation.

    Must stay importable at module level (the pool pickles a reference,
    not the function) and must never raise — errors come back as data
    so one bad experiment cannot take the pool down.
    """
    registry = MetricsRegistry()
    if task.trace_context is not None:
        tracer = Tracer.from_context(task.trace_context, keep_records=True)
    elif task.capture_trace:
        tracer = Tracer(keep_records=True)
    else:
        tracer = None
    rss_before = _peak_rss_bytes()
    start = time.perf_counter()
    out = _TaskOutput(experiment_id=task.experiment_id,
                      shard_index=task.shard_index, worker_pid=os.getpid())
    with observe(Observation(tracer=tracer, registry=registry)):
        try:
            if task.shard_index is None:
                out.value = run_experiment(task.experiment_id, **task.kwargs)
            else:
                spec = get_shard_spec(task.experiment_id)
                if spec is None:  # pragma: no cover - defensive
                    raise InvalidParameterError(
                        f"experiment {task.experiment_id!r} has no shard spec")
                name = f"shard:{task.experiment_id}[{task.shard_index}]"
                if tracer is not None:
                    with tracer.span(name):
                        out.value = spec.runner(**task.kwargs)
                else:
                    out.value = spec.runner(**task.kwargs)
                registry.counter(
                    "experiment_shards_total", "experiment shards completed"
                ).inc(experiment=task.experiment_id)
        except Exception as exc:
            out.error = f"{type(exc).__name__}: {exc}"
            out.value = None
            traceback.clear_frames(exc.__traceback__)
    out.wall_seconds = time.perf_counter() - start
    rss_after = _peak_rss_bytes()
    if rss_before is not None and rss_after is not None:
        out.rss_delta_bytes = max(0, rss_after - rss_before)
    out.metrics_dump = registry.dump()
    if tracer is not None:
        out.trace_records = tracer.records
    return out


@dataclass
class BatchItem:
    """Outcome of one experiment within a batch."""

    experiment_id: str
    result: ExperimentResult | None = None
    error: str | None = None
    cached: bool = False
    shards: int = 0
    wall_seconds: float = 0.0


@dataclass
class BatchReport:
    """Everything ``run_batch`` did, in input order."""

    items: list[BatchItem] = field(default_factory=list)
    jobs: int = 1
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def results(self) -> list[ExperimentResult]:
        return [item.result for item in self.items if item.result is not None]

    @property
    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if item.error is not None]


def _pool_context() -> multiprocessing.context.BaseContext | None:
    """Prefer fork: workers inherit the loaded interpreter (no re-import
    tax) and any in-process experiment registrations, e.g. from tests."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - non-POSIX platforms


def run_batch(experiment_ids: Sequence[str], *,
              kwargs_by_id: Mapping[str, dict[str, Any]] | None = None,
              jobs: int = 1,
              cache: ResultCache | None = None,
              task_timeout: float | None = None,
              retries: int = 1,
              retry_backoff: float = 0.05,
              max_pool_respawns: int = 2,
              trace_parent: str | None = None) -> BatchReport:
    """Run experiments (optionally sharded) across a worker pool.

    Parameters
    ----------
    experiment_ids:
        Registered ids, executed/reported in this order.
    kwargs_by_id:
        Keyword overrides per experiment (the CLI's sampling flags).
    jobs:
        Worker processes.  ``1`` runs everything in-process — same
        decomposition, same seeds, same merge — which is both the
        compatibility path and the honest baseline for speedup claims.
        The hardening knobs below apply to the pool path only.
    cache:
        Optional :class:`ResultCache`; hits skip execution entirely and
        fresh results are stored back.
    task_timeout:
        Wall-clock seconds a single task may run before it is declared
        hung.  A hung worker cannot be cancelled, so the whole pool is
        abandoned (and its processes terminated), innocent in-flight
        tasks are requeued without penalty, and the overdue task is
        retried or failed.  ``None`` disables the watchdog.
    retries:
        How many times a task may be *re*-executed after a failed
        attempt (an error outcome, a timeout, or a pool crash while it
        was in flight).  ``0`` fails fast on the first error.
    retry_backoff:
        Base of the exponential backoff slept before re-queueing attempt
        ``k`` (``retry_backoff * 2**(k-1)`` seconds).
    max_pool_respawns:
        Pool rebuild budget.  Once exhausted, remaining tasks degrade to
        sequential in-process execution (a warning is emitted and
        ``batch_sequential_fallback_total`` is incremented).
    trace_parent:
        Span id to parent this batch under (e.g. a service request's
        span), so a request that fans out through the pool still reads
        as one tree.  ``None`` roots the batch at the tracer's default.

    Observability: metrics and (when a tracer is ambient) trace records
    from every worker are merged into the session's ambient observation
    or the process-global default registry.  With an ambient tracer the
    whole invocation is wrapped in a ``batch:run`` span and every
    worker task carries a :class:`~repro.obs.tracing.TraceContext`, so
    worker-side spans come back already linked (single trace id, parent
    chain through ``batch:run``) rather than as disconnected fragments.
    """
    if jobs < 1:
        raise InvalidParameterError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise InvalidParameterError(f"retries must be >= 0, got {retries}")
    if max_pool_respawns < 0:
        raise InvalidParameterError(
            f"max_pool_respawns must be >= 0, got {max_pool_respawns}")
    if task_timeout is not None and not task_timeout > 0:
        raise InvalidParameterError(
            f"task_timeout must be positive, got {task_timeout!r}")
    if retry_backoff < 0:
        raise InvalidParameterError(
            f"retry_backoff must be >= 0, got {retry_backoff!r}")
    kwargs_by_id = dict(kwargs_by_id or {})
    ctx = current_observation()
    registry = (ctx.registry if ctx is not None and ctx.registry is not None
                else default_registry())
    tracer = ctx.tracer if ctx is not None else None

    with ExitStack() as stack:
        if tracer is not None:
            if trace_parent is not None:
                stack.enter_context(tracer.attach(trace_parent))
            stack.enter_context(tracer.span(
                "batch:run", jobs=jobs, experiments=len(experiment_ids)))
        return _run_batch_body(experiment_ids, kwargs_by_id, registry, tracer,
                               jobs=jobs, cache=cache,
                               task_timeout=task_timeout, retries=retries,
                               retry_backoff=retry_backoff,
                               max_pool_respawns=max_pool_respawns)


def _run_batch_body(experiment_ids: Sequence[str],
                    kwargs_by_id: dict[str, dict[str, Any]],
                    registry: MetricsRegistry, tracer: Tracer | None, *,
                    jobs: int, cache: ResultCache | None,
                    task_timeout: float | None, retries: int,
                    retry_backoff: float,
                    max_pool_respawns: int) -> BatchReport:
    """The batch loop proper, run inside the ``batch:run`` span."""
    report = BatchReport(jobs=jobs)
    batch_start = time.perf_counter()
    items: dict[str, BatchItem] = {}
    pending: list[str] = []
    for experiment_id in experiment_ids:
        item = BatchItem(experiment_id=experiment_id)
        items[experiment_id] = item
        report.items.append(item)
        kwargs = kwargs_by_id.get(experiment_id, {})
        cached = cache.get(experiment_id, kwargs) if cache is not None else None
        if cached is not None:
            item.result = cached
            item.cached = True
            report.cache_hits += 1
            registry.counter("batch_cache_hits_total",
                             "batch results served from the on-disk cache"
                             ).inc(experiment=experiment_id)
            continue
        if cache is not None:
            report.cache_misses += 1
            registry.counter("batch_cache_misses_total",
                             "batch results not found in the on-disk cache"
                             ).inc(experiment=experiment_id)
        pending.append(experiment_id)

    if jobs == 1:
        for experiment_id in pending:
            item = items[experiment_id]
            start = time.perf_counter()
            try:
                item.result = run_experiment(experiment_id,
                                             **kwargs_by_id.get(experiment_id, {}))
            except Exception as exc:
                item.error = f"{type(exc).__name__}: {exc}"
            item.wall_seconds = time.perf_counter() - start
    elif pending:
        _run_pool(pending, kwargs_by_id, jobs, items, registry, tracer,
                  task_timeout=task_timeout, retries=retries,
                  retry_backoff=retry_backoff,
                  max_pool_respawns=max_pool_respawns)

    if cache is not None:
        for experiment_id in pending:
            item = items[experiment_id]
            if item.result is not None:
                cache.put(experiment_id, kwargs_by_id.get(experiment_id, {}),
                          item.result)

    report.wall_seconds = time.perf_counter() - batch_start
    registry.counter("batch_runs_total", "batch invocations").inc()
    registry.timer("batch_seconds", "wall-clock duration of batch runs"
                   ).observe(report.wall_seconds)
    return report


#: How long one ``wait()`` poll blocks before the watchdog re-checks
#: in-flight deadlines.  Scheduling granularity, not a correctness knob.
_POLL_SECONDS = 0.05


def _abandon_pool(pool: ProcessPoolExecutor) -> None:
    """Walk away from a broken or hung pool without blocking on it."""
    pool.shutdown(wait=False, cancel_futures=True)
    # A genuinely hung worker survives a non-blocking shutdown; reap it
    # so retried tasks do not compete with zombies for cores.  The
    # process table is a private attribute, hence the defensive reach.
    processes = getattr(pool, "_processes", None)
    if processes:
        for proc in list(processes.values()):
            try:
                proc.terminate()
            except Exception:  # pragma: no cover - already dead
                pass


def _execute_hardened(tasks: Sequence[_Task], jobs: int,
                      registry: MetricsRegistry, tracer: Tracer | None, *,
                      task_timeout: float | None, retries: int,
                      retry_backoff: float, max_pool_respawns: int
                      ) -> dict[tuple[str, int | None], _TaskOutput]:
    """Run tasks on a process pool that survives crashes and hangs.

    At most ``jobs`` tasks are in flight at a time (so a submission
    timestamp is an execution timestamp and the ``task_timeout``
    watchdog measures actual runtime, not queue time).  Failed attempts
    are retried with exponential backoff up to ``retries``; a crash or
    hang abandons the pool, requeues the in-flight tasks and respawns,
    up to ``max_pool_respawns`` times; past that budget the remaining
    tasks run sequentially in-process.
    """
    outputs: dict[tuple[str, int | None], _TaskOutput] = {}
    queue: deque[tuple[_Task, int]] = deque(
        (task, 0) for task in sorted(tasks, key=lambda t: t.cost, reverse=True))
    inflight: dict[Any, tuple[_Task, int, float]] = {}
    respawns = 0
    pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
        max_workers=jobs, mp_context=_pool_context())

    def record(task: _Task, output: _TaskOutput) -> None:
        outputs[(task.experiment_id, task.shard_index)] = output
        if output.metrics_dump:
            registry.merge(output.metrics_dump)
        if tracer is not None and output.trace_records:
            tracer.ingest(output.trace_records, worker_pid=output.worker_pid)

    def retry_or_fail(task: _Task, attempt: int, error: str) -> None:
        if attempt < retries:
            registry.counter(
                "batch_task_retries_total",
                "batch task attempts retried after a failure"
            ).inc(experiment=task.experiment_id)
            if retry_backoff > 0:
                time.sleep(retry_backoff * (2.0 ** attempt))
            queue.append((task, attempt + 1))
        else:
            record(task, _TaskOutput(experiment_id=task.experiment_id,
                                     shard_index=task.shard_index,
                                     error=error))

    def respawn_or_fallback() -> None:
        nonlocal pool, respawns
        _abandon_pool(pool)
        respawns += 1
        if respawns > max_pool_respawns:
            pool = None
            registry.counter(
                "batch_sequential_fallback_total",
                "batches degraded to sequential in-process execution"
            ).inc()
            warnings.warn(
                f"batch pool irrecoverable after {respawns - 1} respawns; "
                f"degrading to sequential in-process execution",
                RuntimeWarning, stacklevel=2)
        else:
            registry.counter(
                "batch_pool_respawns_total",
                "process pools respawned after a crash or hang"
            ).inc()
            pool = ProcessPoolExecutor(max_workers=jobs,
                                       mp_context=_pool_context())

    while queue or inflight:
        if pool is None:
            # Graceful degradation: no pool left, run what remains in
            # this process.  Timeouts are unenforceable here; errors
            # still come back as data via _execute_task.
            while queue:
                task, attempt = queue.popleft()
                record(task, _execute_task(task))
            break
        while queue and len(inflight) < jobs:
            task, attempt = queue.popleft()
            inflight[pool.submit(_execute_task, task)] = (
                task, attempt, time.monotonic())
        done, _ = wait(list(inflight), timeout=_POLL_SECONDS,
                       return_when=FIRST_COMPLETED)
        if not done:
            if task_timeout is None:
                continue
            now = time.monotonic()
            overdue = {f for f, (_, _, started) in inflight.items()
                       if now - started > task_timeout}
            if not overdue:
                continue
            # A hung worker cannot be cancelled: abandon the whole pool.
            # Overdue tasks burn an attempt; innocent in-flight tasks
            # are requeued (front, to keep LPT order) without penalty.
            for future in list(inflight):
                task, attempt, _ = inflight.pop(future)
                if future in overdue:
                    registry.counter(
                        "batch_task_timeouts_total",
                        "batch tasks declared hung past --task-timeout"
                    ).inc(experiment=task.experiment_id)
                    retry_or_fail(
                        task, attempt,
                        f"TimeoutError: task exceeded task_timeout="
                        f"{task_timeout}s")
                else:
                    queue.appendleft((task, attempt))
            respawn_or_fallback()
            continue
        broken = False
        for future in done:
            task, attempt, _ = inflight.pop(future)
            try:
                output = future.result()
            except Exception as exc:  # BrokenProcessPool and friends
                broken = True
                retry_or_fail(task, attempt, f"{type(exc).__name__}: {exc}")
                continue
            if output.error is not None and attempt < retries:
                retry_or_fail(task, attempt, output.error)
            else:
                record(task, output)
        if broken:
            # Whoever crashed the pool was in `done` and has been
            # penalised; the rest were collateral damage — requeue them
            # with their attempt count intact.
            for future in list(inflight):
                task, attempt, _ = inflight.pop(future)
                queue.appendleft((task, attempt))
            respawn_or_fallback()
    if pool is not None:
        pool.shutdown()
    return outputs


def _run_pool(pending: Sequence[str], kwargs_by_id: Mapping[str, dict],
              jobs: int, items: Mapping[str, BatchItem],
              registry: MetricsRegistry, tracer: Tracer | None, *,
              task_timeout: float | None = None, retries: int = 1,
              retry_backoff: float = 0.05,
              max_pool_respawns: int = 2) -> None:
    """Execute the cache-missed experiments on a (hardened) process pool."""
    capture = tracer is not None
    # Captured inside the ambient ``batch:run`` span, so worker roots
    # parent onto it and worker clocks share the session epoch.
    trace_ctx = tracer.context() if capture else None
    tasks: list[_Task] = []
    shard_specs: dict[str, Any] = {}
    shard_counts: dict[str, int] = {}
    for experiment_id in pending:
        kwargs = kwargs_by_id.get(experiment_id, {})
        spec = get_shard_spec(experiment_id)
        if spec is not None:
            try:
                shards = spec.split(**kwargs)
            except Exception as exc:
                items[experiment_id].error = f"{type(exc).__name__}: {exc}"
                continue
            shard_specs[experiment_id] = spec
            shard_counts[experiment_id] = len(shards)
            items[experiment_id].shards = len(shards)
            tasks.extend(
                _Task(experiment_id, shard_kwargs, shard_index=index,
                      capture_trace=capture, trace_context=trace_ctx)
                for index, shard_kwargs in enumerate(shards))
        else:
            tasks.append(_Task(experiment_id, kwargs, capture_trace=capture,
                               trace_context=trace_ctx))

    outputs = _execute_hardened(tasks, jobs, registry, tracer,
                                task_timeout=task_timeout, retries=retries,
                                retry_backoff=retry_backoff,
                                max_pool_respawns=max_pool_respawns)

    for experiment_id in pending:
        item = items[experiment_id]
        if item.error is not None:  # split() already failed
            continue
        if experiment_id not in shard_specs:
            output = outputs[(experiment_id, None)]
            item.wall_seconds = output.wall_seconds
            if output.error is not None:
                item.error = output.error
            else:
                item.result = output.value
            continue
        shard_outputs = [outputs[(experiment_id, index)]
                         for index in range(shard_counts[experiment_id])]
        item.wall_seconds = sum(o.wall_seconds for o in shard_outputs)
        errors = [o.error for o in shard_outputs if o.error is not None]
        if errors:
            item.error = errors[0]
            registry.counter("experiment_failures_total",
                             "experiment runs that raised"
                             ).inc(experiment=experiment_id)
            continue
        spec = shard_specs[experiment_id]
        kwargs = kwargs_by_id.get(experiment_id, {})
        try:
            merged = spec.merge([o.value for o in shard_outputs], **kwargs)
        except Exception as exc:
            item.error = f"{type(exc).__name__}: {exc}"
            registry.counter("experiment_failures_total",
                             "experiment runs that raised"
                             ).inc(experiment=experiment_id)
            continue
        record_experiment_metrics(registry, experiment_id, item.wall_seconds)
        rss_deltas = [o.rss_delta_bytes for o in shard_outputs
                      if o.rss_delta_bytes is not None]
        obs_block = {
            # Aggregate worker-side compute seconds (the shards ran
            # concurrently, so this is CPU time, not elapsed time).
            "wall_seconds": item.wall_seconds,
            # Largest high-water-mark rise any worker attributed to a
            # shard of this experiment — per-worker RSS, not inherited
            # from whatever ran before in the parent.
            "peak_rss_bytes": max(rss_deltas) if rss_deltas else None,
            "shards": len(shard_outputs),
        }
        item.result = replace(
            merged, metadata={**merged.metadata, "obs": obs_block})
