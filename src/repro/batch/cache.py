"""Content-addressed on-disk cache for experiment results.

Every registered experiment is a pure function of its keyword arguments
(all RNG use is seeded through them), so a completed result can be
reused whenever ``(experiment_id, kwargs, seed, package version)`` is
unchanged.  The cache key is the SHA-256 of that tuple's canonical JSON
form — the seed rides inside ``kwargs``, and the package version folds
in so a code change invalidates every entry at once.

Entries are JSON documents holding :func:`repro.io.result_to_dict`
payloads.  A hit rebuilds the result with
:func:`repro.io.result_from_dict`, whose re-serialisation is
byte-identical to the stored document — so warmed ``run all --json`` /
``report`` invocations are bit-reproducible.  Anything unreadable,
mismatched or unserialisable degrades to a miss (or a skipped store):
the cache can lose entries, never corrupt results.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from repro import __version__
from repro.experiments.base import ExperimentResult
from repro.experiments.export import jsonable
from repro.io import result_from_dict, result_to_dict
from repro.util.fsio import atomic_write_text

__all__ = ["ResultCache", "cache_key", "default_cache_dir"]

_SCHEMA_VERSION = 1


def cache_key(experiment_id: str, kwargs: dict[str, Any]) -> str:
    """The content address of one experiment invocation.

    Module-level so other subsystems (e.g. the run-history store) can
    key telemetry compatibly with cached results without holding a
    :class:`ResultCache`: the SHA-256 of the canonical JSON form of
    ``(experiment_id, kwargs, package version)``.
    """
    canonical = json.dumps(
        {"experiment_id": experiment_id, "kwargs": jsonable(kwargs),
         "version": __version__},
        sort_keys=True, separators=(",", ":"), allow_nan=False)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """Where cached results live unless overridden.

    ``$REPRO_CACHE_DIR`` wins; otherwise the platform cache home
    (``$XDG_CACHE_HOME`` or ``~/.cache``) under ``repro-hetero``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-hetero"


class ResultCache:
    """A directory of content-addressed experiment results.

    Safe under concurrent writers: entries are written to a temp file
    and atomically renamed, and two processes computing the same key
    write identical content anyway.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def key(self, experiment_id: str, kwargs: dict[str, Any]) -> str:
        """The content address of one experiment invocation."""
        return cache_key(experiment_id, kwargs)

    def _path(self, experiment_id: str, key: str) -> Path:
        return self.root / f"{experiment_id}-{key[:16]}.json"

    def get(self, experiment_id: str, kwargs: dict[str, Any]
            ) -> ExperimentResult | None:
        """The cached result, or None on any kind of miss.

        Corrupt, unreadable, stale-schema or key-mismatched files all
        count as misses — a damaged cache degrades to recomputation.
        """
        path = self._path(experiment_id, self.key(experiment_id, kwargs))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("schema_version") != _SCHEMA_VERSION:
                return None
            if payload.get("key") != self.key(experiment_id, kwargs):
                return None
            return result_from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, experiment_id: str, kwargs: dict[str, Any],
            result: ExperimentResult) -> bool:
        """Store a result; returns False when it cannot be serialised.

        Results whose metadata defies JSON (e.g. infinities) are simply
        not cached — callers lose the speedup, never the result.
        """
        key = self.key(experiment_id, kwargs)
        path = self._path(experiment_id, key)
        try:
            document = json.dumps(
                {"schema_version": _SCHEMA_VERSION, "key": key,
                 "experiment_id": experiment_id, "version": __version__,
                 "kwargs": jsonable(kwargs), "result": result_to_dict(result)},
                indent=2, allow_nan=False)
        except (TypeError, ValueError):
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, document)
        except OSError:
            return False
        return True
