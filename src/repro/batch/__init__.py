"""Parallel batch execution: worker pools, shard fan-out, result cache.

The subsystem behind ``repro-hetero run all --jobs N``:

* :mod:`repro.batch.engine` — a process-pool executor that runs
  registered experiments (and, for experiments declaring a
  :class:`~repro.experiments.base.ShardSpec`, their independent trial
  shards) across cores, deterministically: ``--jobs N`` is row-for-row
  identical to ``--jobs 1``.
* :mod:`repro.batch.cache` — a content-addressed on-disk result cache
  keyed by ``(experiment_id, kwargs, seed, package version)`` so
  repeated ``run all`` / ``report`` invocations skip unchanged work.
* :mod:`repro.batch.shared_cache` — a process-shared on-disk tier with
  claim-file single-flight dedup, used by ``serve --workers N`` so one
  fleet computes each hot answer once.

See ``docs/BATCH.md`` for the execution model, the seeding scheme and
the observability-merge semantics.
"""

from repro.batch.cache import ResultCache, cache_key, default_cache_dir
from repro.batch.engine import BatchItem, BatchReport, run_batch
from repro.batch.shared_cache import SharedCache

__all__ = ["BatchItem", "BatchReport", "ResultCache", "SharedCache",
           "cache_key", "default_cache_dir",
           "run_batch"]
