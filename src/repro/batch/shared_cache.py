"""A process-shared on-disk cache tier with single-flight dedup.

``repro-hetero serve --workers N`` runs N independent processes behind
one listening port.  Without coordination, N workers receiving the same
expensive request at the same time would compute it N times — the exact
waste the in-process coalescer eliminates for *one* event loop.  This
module is the cross-process analogue, built on two primitives:

**Atomic publish.**  Entries are JSON documents under one directory,
content-addressed by the caller's key (the service reuses
:func:`repro.batch.cache.cache_key` and the response-cache key, so all
tiers agree on identity).  Writers publish via
:func:`repro.util.fsio.atomic_write_text`; readers see a complete old
document or a complete new one, never a torn write.

**Claim files (single flight).**  ``get_or_compute`` elects exactly one
*leader* per key via ``O_CREAT | O_EXCL`` on a sidecar ``.claim`` file —
the one atomic test-and-set the filesystem gives us.  The leader
computes and publishes; every *follower* polls for the published entry
and returns the same bytes without computing.  A claim names its
holder's pid and birth time, so a crashed leader cannot deadlock its
followers: a claim whose process is gone (or whose age exceeds
``stale_claim``) is *taken over* — the follower atomically replaces the
claim with its own and promotes itself to leader.  Takeover is
last-writer-wins; in the pathological window where two followers take
over simultaneously both may compute, which is safe (publishes are
atomic and the value is a pure function of the key) and bounded (the
normal path computes exactly once — the property pinned by
``tests/properties/test_single_flight_properties.py``).

Entries may carry an absolute expiry (the service's response-cache tier
reuses its TTL); experiment results are published without one, matching
the :class:`~repro.batch.cache.ResultCache` contract that a code change
(version folded into the key) is what invalidates them.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import InvalidParameterError
from repro.util.fsio import atomic_write_text

__all__ = ["SharedCache", "SingleFlightStats"]

_SCHEMA_VERSION = 1

#: ``get_or_compute`` outcome labels, in the order a request cascades:
#: published entry found (``hit``), claim won (``leader``), leader's
#: publish awaited (``follower``), or computed without a shared tier /
#: after an unpublishable leader (``local``).
OUTCOMES = ("hit", "leader", "follower", "local")


class SingleFlightStats:
    """Counters for one :class:`SharedCache` instance (one process)."""

    __slots__ = ("hits", "leads", "follows", "locals", "takeovers")

    def __init__(self) -> None:
        self.hits = 0
        self.leads = 0
        self.follows = 0
        self.locals = 0
        self.takeovers = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "leads": self.leads,
                "follows": self.follows, "locals": self.locals,
                "takeovers": self.takeovers}


class SharedCache:
    """A directory of atomically-published, claim-guarded JSON values.

    Parameters
    ----------
    root:
        Directory holding ``<key>.json`` entries and ``<key>.claim``
        sidecars; created on first write.
    stale_claim:
        Seconds after which a claim whose holder cannot be confirmed
        alive is considered abandoned and may be taken over.  Claims of
        *dead* local processes are taken over immediately.
    poll_interval:
        Follower poll cadence while awaiting a leader's publish.
    """

    def __init__(self, root: str | Path, *, stale_claim: float = 30.0,
                 poll_interval: float = 0.005) -> None:
        if not stale_claim > 0:
            raise InvalidParameterError(
                f"stale_claim must be positive, got {stale_claim!r}")
        if not poll_interval > 0:
            raise InvalidParameterError(
                f"poll_interval must be positive, got {poll_interval!r}")
        self.root = Path(root)
        self.stale_claim = float(stale_claim)
        self.poll_interval = float(poll_interval)
        self.stats = SingleFlightStats()

    # -- paths ---------------------------------------------------------
    def _entry_path(self, key: str) -> Path:
        return self.root / f"{_safe(key)}.json"

    def _claim_path(self, key: str) -> Path:
        return self.root / f"{_safe(key)}.claim"

    # -- the published tier --------------------------------------------
    def get(self, key: str) -> Any | None:
        """The published value, or ``None`` on any kind of miss.

        Expired and damaged entries degrade to misses (and are removed
        best-effort): this tier can lose entries, never corrupt them.
        Tombstones (a leader that computed an unpublishable value) also
        read as misses — :meth:`get_or_compute` inspects them itself.
        """
        value = self._read_entry(key)
        if value is None or value.get("tombstone"):
            return None
        return value["value"]

    def get_with_expiry(self, key: str) -> tuple[Any, float | None] | None:
        """Like :meth:`get`, plus the entry's absolute expiry (epoch).

        The response-cache tier uses this to promote a shared hit into
        process memory *without extending its lifetime*: the in-memory
        copy inherits the remaining TTL, not a fresh one.
        """
        document = self._read_entry(key)
        if document is None or document.get("tombstone"):
            return None
        return document["value"], document.get("expires")

    def _read_entry(self, key: str) -> dict[str, Any] | None:
        path = self._entry_path(key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            if (document.get("schema_version") != _SCHEMA_VERSION
                    or document.get("key") != key):
                return None
            expires = document.get("expires")
            if expires is not None and time.time() >= expires:
                _unlink_quietly(path)
                return None
            return document
        except (OSError, ValueError, AttributeError, KeyError, TypeError):
            return None

    def put(self, key: str, value: Any, *, ttl: float | None = None,
            tombstone: bool = False) -> bool:
        """Atomically publish ``value``; False when it defies JSON/disk."""
        document = {"schema_version": _SCHEMA_VERSION, "key": key,
                    "expires": (time.time() + ttl) if ttl else None,
                    "value": value}
        if tombstone:
            document["tombstone"] = True
        try:
            text = json.dumps(document, separators=(",", ":"),
                              allow_nan=False)
        except (TypeError, ValueError):
            return False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self._entry_path(key), text)
        except OSError:
            return False
        return True

    # -- the claim protocol --------------------------------------------
    def try_claim(self, key: str) -> str | None:
        """Win the key's claim (→ a release token) or ``None`` if held."""
        token = f"{os.getpid()}-{os.urandom(8).hex()}"
        body = json.dumps({"pid": os.getpid(), "token": token,
                           "time": time.time()})
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd = os.open(self._claim_path(key),
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return None
        except OSError:
            return None
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(body)
        return token

    def release_claim(self, key: str, token: str) -> None:
        """Drop the claim if (and only if) ``token`` still holds it."""
        path = self._claim_path(key)
        try:
            holder = json.loads(path.read_text(encoding="utf-8"))
            if holder.get("token") == token:
                _unlink_quietly(path)
        except (OSError, ValueError, AttributeError):
            pass

    def _claim_is_stale(self, key: str) -> bool:
        """True when the claim's holder is provably gone or too old."""
        path = self._claim_path(key)
        try:
            holder = json.loads(path.read_text(encoding="utf-8"))
            born = float(holder["time"])
            pid = int(holder["pid"])
        except (OSError, ValueError, KeyError, TypeError):
            # Unreadable mid-write is expected for a moment; only age
            # can condemn a claim we cannot parse.
            try:
                born = path.stat().st_mtime
            except OSError:
                return False  # claim vanished: not stale, gone
            return time.time() - born > self.stale_claim
        if time.time() - born > self.stale_claim:
            return True
        if pid == os.getpid():
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # holder is dead; nobody will publish or release
        except PermissionError:
            return False  # alive, different uid
        return False

    def _take_over(self, key: str) -> str | None:
        """Atomically replace a stale claim with our own (→ token).

        Last writer wins; the small window where two takers race is
        resolved by re-reading the claim — only the taker whose token
        survived is leader.
        """
        token = f"{os.getpid()}-{os.urandom(8).hex()}"
        body = json.dumps({"pid": os.getpid(), "token": token,
                           "time": time.time()})
        path = self._claim_path(key)
        try:
            atomic_write_text(path, body)
            holder = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if holder.get("token") != token:
            return None
        self.stats.takeovers += 1
        return token

    # -- single flight -------------------------------------------------
    def get_or_compute(self, key: str, compute: Callable[[], Any], *,
                       ttl: float | None = None,
                       wait_timeout: float = 600.0,
                       publishable: Callable[[Any], bool] | None = None,
                       ) -> tuple[Any, str]:
        """One value per key, however many processes ask at once.

        Returns ``(value, outcome)`` with ``outcome`` one of
        :data:`OUTCOMES`.  The leader's ``compute()`` exceptions
        propagate to the leader only — its claim is released so a
        follower can retry rather than deadlock.  When ``publishable``
        rejects the computed value (e.g. an experiment that errored), a
        short-lived tombstone is published so followers stop waiting
        and compute locally.  A follower that outwaits ``wait_timeout``
        also degrades to a local compute: the shared tier can only ever
        *save* work, never wedge a request.
        """
        start = time.monotonic()
        poll = self.poll_interval
        while True:
            value = self._read_entry(key)
            if value is not None:
                if value.get("tombstone"):
                    self.stats.locals += 1
                    return compute(), "local"
                self.stats.hits += 1
                return value["value"], "hit"

            token = self.try_claim(key)
            if token is None and self._claim_is_stale(key):
                token = self._take_over(key)
            if token is not None:
                try:
                    # Double-check under the claim: the previous leader
                    # may have published and released between our entry
                    # read above and the claim acquisition, and leading
                    # now would compute a second time.
                    entry = self._read_entry(key)
                    if entry is not None and not entry.get("tombstone"):
                        self.stats.hits += 1
                        return entry["value"], "hit"
                    result = self._lead(key, compute, ttl, publishable)
                finally:
                    self.release_claim(key, token)
                return result

            if time.monotonic() - start > wait_timeout:
                self.stats.locals += 1
                return compute(), "local"
            time.sleep(poll)
            poll = min(poll * 1.5, 0.05)
            entry = self._read_entry(key)
            if entry is not None and not entry.get("tombstone"):
                self.stats.follows += 1
                return entry["value"], "follower"

    def _lead(self, key: str, compute: Callable[[], Any],
              ttl: float | None,
              publishable: Callable[[Any], bool] | None) -> tuple[Any, str]:
        value = compute()
        if publishable is not None and not publishable(value):
            # Let waiting followers fail over to their own compute
            # promptly instead of outwaiting the claim.
            self.put(key, None, ttl=5.0, tombstone=True)
            self.stats.locals += 1
            return value, "local"
        self.put(key, value, ttl=ttl)
        self.stats.leads += 1
        return value, "leader"


def _safe(key: str) -> str:
    """Keys become filenames; anything exotic is hex-armoured."""
    if key and all(c.isalnum() or c in "-_." for c in key):
        return key
    return "x" + key.encode("utf-8", "surrogatepass").hex()


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
