"""One-stop cluster comparison: every measure and predictor, side by side.

The paper develops half a dozen lenses for "which cluster is more
powerful?" — X, HECR, work ratios, minorization, cross-product
dominance, variance, majorization.  :func:`compare_clusters` applies all
of them to a pair and returns a structured verdict sheet, which the CLI
(``repro-hetero compare``) and the procurement example render.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.hecr import hecr
from repro.core.measure import work_ratio, x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.dominance import (
    DominanceVerdict,
    cross_product_dominance,
    minorization_predicts,
)
from repro.predictors.majorization import majorization_prediction

__all__ = ["ClusterComparison", "compare_clusters"]


@dataclass(frozen=True)
class ClusterComparison:
    """Everything the framework can say about a pair of clusters.

    Predictor fields use the convention 0 = first cluster, 1 = second,
    −1 = no call.  ``winner`` is ground truth by X (−1 on an exact tie).
    """

    p1: Profile
    p2: Profile
    params: ModelParams
    x1: float
    x2: float
    hecr1: float
    hecr2: float
    work_ratio_1_over_2: float
    winner: int
    minorization: DominanceVerdict
    cross_product: DominanceVerdict
    variance_call: int
    majorization_call: int

    @property
    def equal_means(self) -> bool:
        return abs(self.p1.mean - self.p2.mean) <= 1e-9 * max(self.p1.mean,
                                                              self.p2.mean)

    def verdict_rows(self) -> list[tuple[str, str, str]]:
        """(lens, call, agrees-with-truth) rows for rendering."""
        def call_name(call: int) -> str:
            return {0: "first", 1: "second", -1: "no call"}[call]

        def agreement(call: int) -> str:
            if call == -1:
                return "—"
            return "yes" if call == self.winner else "NO"

        rows = [
            ("X-measure (ground truth)",
             "first" if self.winner == 0 else "second" if self.winner == 1 else "tie",
             "—"),
            ("minorization (Prop. 2)", self.minorization.value,
             agreement({"first": 0, "second": 1}.get(self.minorization.value, -1))),
            ("cross-product (Prop. 3)", self.cross_product.value,
             agreement({"first": 0, "second": 1}.get(self.cross_product.value, -1))),
        ]
        if self.equal_means:
            rows.append(("variance (Thm. 5)", call_name(self.variance_call),
                         agreement(self.variance_call)))
            rows.append(("majorization", call_name(self.majorization_call),
                         agreement(self.majorization_call)))
        return rows


def compare_clusters(p1: Profile, p2: Profile,
                     params: ModelParams) -> ClusterComparison:
    """Evaluate every measure and predictor on one cluster pair.

    Equal-mean-only predictors (variance, majorization) return −1
    ("no call") when the means differ.
    """
    if p1.n != p2.n:
        raise InvalidProfileError(
            f"comparisons need equal-size clusters (got {p1.n} vs {p2.n})")
    x1 = x_measure(p1, params)
    x2 = x_measure(p2, params)
    winner = 0 if x1 > x2 else 1 if x2 > x1 else -1

    equal_means = abs(p1.mean - p2.mean) <= 1e-9 * max(p1.mean, p2.mean)
    variance_call = -1
    majorization_call = -1
    if equal_means:
        v1, v2 = p1.variance, p2.variance
        variance_call = 0 if v1 > v2 else 1 if v2 > v1 else -1
        try:
            majorization_call = majorization_prediction(p1, p2)
        except InvalidProfileError:  # pragma: no cover - guarded by equal_means
            majorization_call = -1

    return ClusterComparison(
        p1=p1, p2=p2, params=params,
        x1=x1, x2=x2,
        hecr1=hecr(p1, params), hecr2=hecr(p2, params),
        work_ratio_1_over_2=work_ratio(p1, p2, params),
        winner=winner,
        minorization=minorization_predicts(p1, p2),
        cross_product=cross_product_dominance(p1, p2).verdict,
        variance_call=variance_call,
        majorization_call=majorization_call,
    )
