"""Architectural model parameters (paper §2.1, Tables 1 and 2).

The paper's environment is described by three rates, all expressed per unit
of work in the time unit in which the slowest computer's compute rate is
``ρ₁ = 1``:

``tau`` (τ)
    Network transit rate: time for one unit of work to cross the network
    between any two computers (pipelined, latency ignored).
``pi`` (π)
    Message-packaging rate of the *slowest* computer: time it spends
    packaging (packetising/compressing/encoding) one unit of work before
    injecting it into the network, and equally unpackaging on receipt.
    Under the *balanced architecture* assumption of §2.1 a computer with
    compute rate ρᵢ packages at rate π·ρᵢ — every subsystem scales together.
``delta`` (δ)
    Output/input ratio: each unit of work produces δ ≤ 1 units of results.

Two derived constants appear in every formula of the paper:

``A = π + τ``
    Per-unit cost of preparing and transmitting work from the server.
``B = 1 + (1 + δ)·π``
    Per-unit *busy* time of a ρ = 1 computer: unpackage (π), compute (1),
    package results (δ·π).  A computer of speed ρ is busy ``B·ρ`` per unit.

The class also exposes the Theorem-4 threshold ``A·τδ/B²`` that separates
the two multiplicative-speedup regimes, and validates the standing
assumption ``τδ ≤ A ≤ B`` that Section 4's symmetric-function results rely
on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.errors import InvalidParameterError

__all__ = ["ModelParams", "PAPER_TABLE1", "FIG34_CALIBRATION", "NEGLIGIBLE_OVERHEADS"]


@dataclass(frozen=True, slots=True)
class ModelParams:
    """Immutable bundle of the model's architectural parameters.

    Parameters
    ----------
    tau:
        Network transit rate τ (time units per work unit), ``τ > 0``.
    pi:
        Packaging rate π of the slowest computer (time units per work
        unit), ``π ≥ 0``.
    delta:
        Output/input ratio δ, ``0 ≤ δ ≤ 1``.

    Examples
    --------
    >>> p = ModelParams(tau=1e-6, pi=1e-5, delta=1.0)
    >>> round(p.A, 9)
    1.1e-05
    >>> round(p.B, 6)
    1.00002
    """

    tau: float
    pi: float
    delta: float = 1.0

    def __post_init__(self) -> None:
        for name in ("tau", "pi", "delta"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise InvalidParameterError(f"{name} must be a real number, got {value!r}")
            if not math.isfinite(float(value)):
                raise InvalidParameterError(f"{name} must be finite, got {value!r}")
        if self.tau <= 0:
            raise InvalidParameterError(f"tau must be positive, got {self.tau!r}")
        if self.pi < 0:
            raise InvalidParameterError(f"pi must be nonnegative, got {self.pi!r}")
        if not (0.0 <= self.delta <= 1.0):
            raise InvalidParameterError(
                f"delta must lie in [0, 1] (each work unit produces at most "
                f"one unit of results), got {self.delta!r}")

    # ------------------------------------------------------------------
    # Derived constants
    # ------------------------------------------------------------------
    @property
    def A(self) -> float:
        """``A = π + τ`` — per-unit send cost (prepare + transit)."""
        return self.pi + self.tau

    @property
    def B(self) -> float:
        """``B = 1 + (1 + δ)π`` — per-unit busy time of a ρ = 1 computer."""
        return 1.0 + (1.0 + self.delta) * self.pi

    @property
    def tau_delta(self) -> float:
        """``τδ`` — per-unit transit cost of a result message."""
        return self.tau * self.delta

    @property
    def A_minus_tau_delta(self) -> float:
        """``A − τδ``; nonnegative under the standing assumption."""
        return self.A - self.tau_delta

    @property
    def speedup_threshold(self) -> float:
        """Theorem 4's boundary quantity ``A·τδ/B²``.

        Speeding up the *faster* of two computers Cᵢ, Cⱼ multiplicatively by
        ψ wins exactly when ``ψ·ρᵢ·ρⱼ`` exceeds this threshold; otherwise
        speeding up the slower one wins.
        """
        return self.A * self.tau_delta / (self.B * self.B)

    # ------------------------------------------------------------------
    # Validity predicates
    # ------------------------------------------------------------------
    @property
    def satisfies_standing_assumption(self) -> bool:
        """Whether ``τδ ≤ A ≤ B`` holds (assumed throughout paper §4).

        ``τδ ≤ A`` always holds for δ ≤ 1 since A = π + τ ≥ τ ≥ τδ.  The
        ``A ≤ B`` half can fail only for extreme transit rates
        (τ > 1 + δπ), i.e. when moving a unit of work costs more than
        computing it on the slowest machine.
        """
        return self.tau_delta <= self.A <= self.B

    def require_standing_assumption(self) -> None:
        """Raise :class:`InvalidParameterError` unless ``τδ ≤ A ≤ B``."""
        if not self.satisfies_standing_assumption:
            raise InvalidParameterError(
                f"parameters violate the standing assumption τδ ≤ A ≤ B: "
                f"τδ={self.tau_delta!r}, A={self.A!r}, B={self.B!r}")

    @property
    def is_degenerate(self) -> bool:
        """True when ``A = τδ`` exactly.

        In that limit the per-computer product factors of eq. (1) all equal
        one and several closed forms (e.g. Proposition 1) need their
        limiting expressions.
        """
        return self.A == self.tau_delta

    # ------------------------------------------------------------------
    # Exact-arithmetic twin
    # ------------------------------------------------------------------
    def exact(self) -> "ExactParams":
        """Return a :class:`fractions.Fraction` twin of these parameters.

        The floats are converted via ``Fraction(float)`` (exact binary
        values), so the twin evaluates the *same* numbers with unlimited
        precision — the ground truth the float code is tested against.
        """
        return ExactParams(
            tau=Fraction(self.tau),
            pi=Fraction(self.pi),
            delta=Fraction(self.delta),
        )

    # ------------------------------------------------------------------
    # Convenience constructors / reports
    # ------------------------------------------------------------------
    @classmethod
    def from_rates(cls, *, bandwidth: float, package_rate: float,
                   output_fraction: float = 1.0) -> "ModelParams":
        """Build parameters from hardware-style rates.

        Parameters
        ----------
        bandwidth:
            Work units per time unit the network moves; ``τ = 1/bandwidth``.
        package_rate:
            Work units per time unit the slowest computer packages;
            ``π = 1/package_rate``.  Pass ``math.inf`` for free packaging.
        output_fraction:
            δ, the results-per-work ratio.
        """
        if bandwidth <= 0:
            raise InvalidParameterError(f"bandwidth must be positive, got {bandwidth!r}")
        if package_rate <= 0:
            raise InvalidParameterError(f"package_rate must be positive, got {package_rate!r}")
        pi = 0.0 if math.isinf(package_rate) else 1.0 / package_rate
        return cls(tau=1.0 / bandwidth, pi=pi, delta=output_fraction)

    def with_task_granularity(self, seconds_per_task: float, *,
                              reference_seconds_per_task: float = 1.0) -> "ModelParams":
        """Re-express the parameters for a different task granularity.

        The dimensionless rates assume the slowest computer needs one
        *time unit* per work unit.  Moving from tasks that take
        ``reference_seconds_per_task`` on that computer to tasks taking
        ``seconds_per_task`` rescales the time unit, so the wall-clock
        communication rates (fixed in seconds) change their dimensionless
        values by the inverse ratio — the paper's Table-2 "coarse vs
        finer tasks" comparison.

        >>> finer = PAPER_TABLE1.with_task_granularity(0.1)
        >>> round(finer.tau, 9)       # 1 µs against 0.1 s tasks
        1e-05
        """
        if seconds_per_task <= 0 or reference_seconds_per_task <= 0:
            raise InvalidParameterError(
                f"task granularities must be positive, got "
                f"{seconds_per_task!r} and {reference_seconds_per_task!r}")
        scale = reference_seconds_per_task / seconds_per_task
        return ModelParams(tau=self.tau * scale, pi=self.pi * scale,
                           delta=self.delta)

    def derived_table(self) -> dict[str, float]:
        """The derived quantities of the paper's Table 2 as a dict."""
        return {
            "A": self.A,
            "B": self.B,
            "tau_delta": self.tau_delta,
            "A_minus_tau_delta": self.A_minus_tau_delta,
            "speedup_threshold": self.speedup_threshold,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ModelParams(τ={self.tau:g}, π={self.pi:g}, δ={self.delta:g}; "
                f"A={self.A:g}, B={self.B:g})")


@dataclass(frozen=True, slots=True)
class ExactParams:
    """Exact-rational view of :class:`ModelParams` (see ``core.exact``)."""

    tau: Fraction
    pi: Fraction
    delta: Fraction

    @property
    def A(self) -> Fraction:
        return self.pi + self.tau

    @property
    def B(self) -> Fraction:
        return 1 + (1 + self.delta) * self.pi

    @property
    def tau_delta(self) -> Fraction:
        return self.tau * self.delta

    @property
    def speedup_threshold(self) -> Fraction:
        return self.A * self.tau_delta / (self.B * self.B)


#: Table 1 of the paper: τ = 1 µs, π = 10 µs, δ = 1, with the time unit set
#: by a coarse (≈1 s per work unit) task granularity, so τ and π are the
#: dimensionless values 1e-6 and 1e-5.
PAPER_TABLE1 = ModelParams(tau=1e-6, pi=1e-5, delta=1.0)

#: Calibration used for the Figure 3/4 iterative-speedup experiment.  The
#: paper "increased τ … to 200 µsec … to make the figure legible"; for the
#: figures' phase structure to match Theorem 4 the threshold A·τδ/B² must
#: lie in (1/32, 1/16), which requires τ = 0.2 work-time units (see
#: DESIGN.md §4, substitution 3).  Threshold here: 0.04.
FIG34_CALIBRATION = ModelParams(tau=0.2, pi=1e-5, delta=1.0)

#: A near-ideal environment: negligible (but nonzero) communication cost.
#: X(P) approaches the sum of the computers' speeds Σ 1/ρᵢ.
NEGLIGIBLE_OVERHEADS = ModelParams(tau=1e-9, pi=0.0, delta=1.0)
