"""The X-measure and work production (paper §2.4, Theorem 2).

For a cluster with profile ``P = ⟨ρ₁, …, ρₙ⟩`` operating under the optimal
FIFO worksharing protocol, the asymptotic work completed over a lifespan
``L`` is

.. math::

    W(L; P) = \\frac{L}{τδ + 1/X(P)},\\qquad
    X(P) = \\sum_{i=1}^{n} \\frac{1}{Bρ_i + A}
           \\prod_{j=1}^{i-1} \\frac{Bρ_j + τδ}{Bρ_j + A}.

``X(P)`` *tracks* work production — ``X(P₁) ≥ X(P₂)`` iff
``W(L;P₁) ≥ W(L;P₂)`` — so it serves as the primary power measure
throughout the paper.  Although eq. (1) is written against a particular
computer ordering, ``X`` is a symmetric function of the profile
(Lemma 1), hence independent of ordering; tests exercise this.

This module also provides the decomposition of eq. (3), used in the
Theorem 3/4 proofs, which isolates the last two computers of a chosen
startup order:

.. math::

    X(P) = \\frac{A + B(ρ_{s_{n-1}} + ρ_{s_n}) + τδ}
                 {A² + AB(ρ_{s_{n-1}} + ρ_{s_n}) + B²ρ_{s_{n-1}}ρ_{s_n}}
           · Y(P) + Z(P)

with ``Y(P) = Π_{k≤n-2} (Bρ_{s_k} + τδ)/(Bρ_{s_k} + A)`` and
``Z(P) = X(ρ_{s_1}, …, ρ_{s_{n-2}})``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from repro.core.batch_kernels import ProfileBatch
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.util.arrays import validate_positive_vector

__all__ = [
    "x_measure",
    "work_rate",
    "work_production",
    "work_ratio",
    "x_measure_many",
    "XDecomposition",
    "x_decomposition",
    "XEvaluator",
]

ProfileLike = Union[Profile, Iterable[float]]


def _rho_array(profile: ProfileLike) -> np.ndarray:
    """Extract a validated ρ-array from a Profile or iterable."""
    if isinstance(profile, Profile):
        return profile.rho
    return validate_positive_vector(profile, name="profile")


def x_measure(profile: ProfileLike, params: ModelParams) -> float:
    """Evaluate ``X(P)`` — eq. (1) of the paper.

    Parameters
    ----------
    profile:
        The cluster's heterogeneity profile (a :class:`Profile` or any
        iterable of positive ρ-values).
    params:
        Architectural model parameters.

    Returns
    -------
    float
        ``X(P) > 0``.  Larger X means a more powerful cluster.

    Notes
    -----
    Computed in one vectorised pass: with ``dᵢ = Bρᵢ + A`` and
    ``rᵢ = (Bρᵢ + τδ)/dᵢ``, the i-th term is ``(Π_{j<i} rⱼ)/dᵢ``, i.e. an
    exclusive cumulative product divided by d.  All rᵢ lie in (0, 1] under
    τδ ≤ A, so the cumulative product is monotone and stable even for
    n = 2¹⁶ computers.

    Examples
    --------
    >>> from repro.core.params import PAPER_TABLE1
    >>> round(x_measure([1.0], PAPER_TABLE1), 4)      # one ρ=1 computer
    1.0
    """
    rho = _rho_array(profile)
    A, B, td = params.A, params.B, params.tau_delta
    denom = B * rho + A
    ratios = (B * rho + td) / denom
    # exclusive prefix product: [1, r1, r1·r2, …]
    prefix = np.empty_like(denom)
    prefix[0] = 1.0
    if rho.size > 1:
        np.cumprod(ratios[:-1], out=prefix[1:])
    return float(np.sum(prefix / denom))


def x_measure_many(profiles: np.ndarray, params: ModelParams) -> np.ndarray:
    """Evaluate ``X`` for a batch of same-size profiles.

    Parameters
    ----------
    profiles:
        Array of shape ``(m, n)``: m profiles of n computers each.  Every
        entry must be positive.  ``m = 0`` (the empty batch) is valid and
        yields a shape-``(0,)`` result, so sharded pipelines can pass
        empty shards through; ``n = 0`` is rejected with a shape-specific
        error.
    params:
        Architectural model parameters.

    Returns
    -------
    numpy.ndarray
        Shape ``(m,)`` of X-values.

    Notes
    -----
    A thin wrapper over :class:`~repro.core.batch_kernels.ProfileBatch`
    (construct one directly to reuse the derived columns across X, work
    and HECR kernels).  Each row is bit-identical to the corresponding
    :func:`x_measure` call.  Used by the §4.3 experiments, which compare
    tens of thousands of random cluster pairs; batching the cumulative
    products row-wise is an order of magnitude faster than looping over
    :func:`x_measure`.
    """
    return ProfileBatch(profiles, copy=False).x(params)


def work_rate(profile: ProfileLike, params: ModelParams, *,
              x: float | None = None) -> float:
    """Asymptotic work completed per time unit: ``W(L;P)/L = 1/(τδ + 1/X)``.

    Pass a precomputed ``x`` (e.g. from an :class:`XEvaluator` or an
    ``x_measure`` result already in hand) to skip re-evaluating eq. (1);
    the result is bit-identical to the recomputed one because the same X
    float enters the same formula.
    """
    X = x_measure(profile, params) if x is None else x
    return 1.0 / (params.tau_delta + 1.0 / X)


def work_production(profile: ProfileLike, params: ModelParams, lifespan: float,
                    *, x: float | None = None) -> float:
    """Theorem 2's asymptotic work completed in ``lifespan`` time units.

    Parameters
    ----------
    profile:
        The cluster's heterogeneity profile.
    params:
        Architectural model parameters.
    lifespan:
        The CEP lifespan ``L > 0``.
    x:
        Optional precomputed ``X(P)`` (skips the eq.-(1) evaluation).

    Returns
    -------
    float
        ``W(L; P) = L / (τδ + 1/X(P))`` in work units.
    """
    if lifespan <= 0 or not np.isfinite(lifespan):
        raise InvalidParameterError(f"lifespan must be positive and finite, got {lifespan!r}")
    return lifespan * work_rate(profile, params, x=x)


def work_ratio(new_profile: ProfileLike, old_profile: ProfileLike,
               params: ModelParams, *, x_new: float | None = None,
               x_old: float | None = None) -> float:
    """``W(L; P_new) / W(L; P_old)`` — the paper's profile-comparison ratio.

    Independent of ``L`` because W is linear in L; this is what Table 4
    tabulates for the additive-speedup scenario.  ``x_new``/``x_old``
    optionally supply already-computed X-values for either profile.
    """
    return (work_rate(new_profile, params, x=x_new)
            / work_rate(old_profile, params, x=x_old))


class XEvaluator:
    """Incremental evaluation of ``X(P)`` under single-ρ edits.

    The eq.-(1) sum factors around any one computer k exactly like the
    eq.-(3) decomposition factors around the last two: with
    ``dᵢ = Bρᵢ + A``, ``rᵢ = (Bρᵢ + τδ)/dᵢ`` and terms
    ``tᵢ = (Π_{j<i} rⱼ)/dᵢ``,

    .. math::

        X = \\underbrace{\\sum_{i<k} t_i}_{\\text{head}}
            + \\frac{Π_{j<k} r_j}{d_k}
            + r_k · \\underbrace{\\frac{\\sum_{i>k} t_i}{r_k}}_{V_k},

    and head, the prefix product and ``V_k`` are all independent of
    ``ρ_k``.  Holding the prefix products and the running term sums as
    state therefore makes *"what would X be if ρ_k became ρ'?"* an O(1)
    query (:meth:`x_with_rho`) instead of the O(n) fresh
    :func:`x_measure` — which turns the speedup planner's greedy rounds
    and the sensitivity layer's root-finds from O(n²) scans into O(n).

    Commits (:meth:`set_rho`, :meth:`insert`, :meth:`remove`) apply an
    edit and rebuild the cumulative state in O(n); after any commit
    :attr:`x` is **bit-identical** to a fresh ``x_measure`` of the
    current profile (the rebuild runs the same reduction), so swapping
    the evaluator into existing call sites cannot move their floats.
    Only the O(1) previews may differ from a fresh evaluation, at the
    ~1-ulp level of re-associating the sum (property-tested ≤ 1e-9).
    """

    __slots__ = ("_params", "_rho", "_d", "_r", "_prefix", "_terms",
                 "_cum", "_x")

    def __init__(self, profile: ProfileLike, params: ModelParams) -> None:
        self._params = params
        self._rho = np.array(_rho_array(profile), dtype=float)
        self._rebuild()

    # -- state ----------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self._rho.size)

    @property
    def rho(self) -> np.ndarray:
        """A copy of the current ρ-vector."""
        return self._rho.copy()

    @property
    def params(self) -> ModelParams:
        return self._params

    @property
    def x(self) -> float:
        """``X`` of the current profile — bit-identical to ``x_measure``."""
        return self._x

    def _rebuild(self) -> None:
        rho = self._rho
        p = self._params
        A, B, td = p.A, p.B, p.tau_delta
        self._d = B * rho + A
        self._r = (B * rho + td) / self._d
        prefix = np.empty_like(self._d)
        prefix[0] = 1.0
        if rho.size > 1:
            np.cumprod(self._r[:-1], out=prefix[1:])
        self._prefix = prefix
        self._terms = prefix / self._d
        self._cum = np.cumsum(self._terms)
        # Same reduction as x_measure → bit-identical committed value.
        self._x = float(np.sum(self._terms))

    @staticmethod
    def _validate_rho(value: float) -> float:
        value = float(value)
        if not np.isfinite(value) or value <= 0.0:
            raise InvalidParameterError(
                f"rho must be positive and finite, got {value!r}")
        return value

    def _validate_index(self, k: int) -> int:
        k = int(k)
        if not (0 <= k < self._rho.size):
            raise InvalidParameterError(
                f"index {k} out of range for {self._rho.size} computers")
        return k

    # -- O(1) preview ---------------------------------------------------
    def x_with_rho(self, k: int, rho_new: float) -> float:
        """``X`` of the profile with ``ρ_k`` replaced by ``rho_new`` — O(1).

        Does not mutate the evaluator.  Agrees with a fresh
        :func:`x_measure` of the edited profile to ~1 ulp per term.
        """
        k = self._validate_index(k)
        rho_new = self._validate_rho(rho_new)
        p = self._params
        d_new = p.B * rho_new + p.A
        r_new = (p.B * rho_new + p.tau_delta) / d_new
        head = float(self._cum[k - 1]) if k else 0.0
        tail = float(self._cum[-1] - self._cum[k])
        return head + float(self._prefix[k]) / d_new \
            + r_new * (tail / float(self._r[k]))

    def x_with_rho_many(self, indices, values) -> np.ndarray:
        """Preview many independent single-ρ edits at once — O(candidates).

        For each candidate ``(indices[c], values[c])``, the X of the
        profile with that one ρ replaced: the vectorised form of calling
        :meth:`x_with_rho` per candidate (bit-identical per entry — the
        same elementwise formula evaluates on arrays).  Turns the
        speedup planner's per-candidate Python loop into one NumPy
        expression.  Does not mutate the evaluator.
        """
        idx = np.asarray(indices, dtype=int)
        vals = np.asarray(values, dtype=float)
        if idx.shape != vals.shape or idx.ndim != 1:
            raise InvalidParameterError(
                f"indices and values must be matching 1-D arrays, got "
                f"shapes {idx.shape} and {vals.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= self._rho.size):
            raise InvalidParameterError(
                f"edit indices must lie in [0, {self._rho.size}), got "
                f"[{idx.min()}, {idx.max()}]")
        if np.any(vals <= 0.0) or not np.all(np.isfinite(vals)):
            raise InvalidParameterError(
                "replacement rho values must be positive and finite")
        p = self._params
        d_new = p.B * vals + p.A
        r_new = (p.B * vals + p.tau_delta) / d_new
        head = np.where(idx > 0, self._cum[np.maximum(idx - 1, 0)], 0.0)
        tail = self._cum[-1] - self._cum[idx]
        return head + self._prefix[idx] / d_new \
            + r_new * (tail / self._r[idx])

    # -- O(n) commits ---------------------------------------------------
    def set_rho(self, k: int, rho_new: float) -> float:
        """Commit ``ρ_k ← rho_new``; returns the exact new ``X``."""
        k = self._validate_index(k)
        self._rho[k] = self._validate_rho(rho_new)
        self._rebuild()
        return self._x

    def insert(self, rho_new: float) -> float:
        """Add a computer with rate ``rho_new``; returns the new ``X``."""
        rho_new = self._validate_rho(rho_new)
        self._rho = np.append(self._rho, rho_new)
        self._rebuild()
        return self._x

    def remove(self, k: int) -> float:
        """Drop computer ``k``; returns the new ``X``."""
        k = self._validate_index(k)
        if self._rho.size == 1:
            raise InvalidParameterError(
                "cannot remove the last computer from an XEvaluator")
        self._rho = np.delete(self._rho, k)
        self._rebuild()
        return self._x


@dataclass(frozen=True, slots=True)
class XDecomposition:
    """The eq.-(3) split of ``X(P)`` around the last two computers.

    Attributes
    ----------
    lead:
        The lead fraction
        ``(A + B(ρᵢ+ρⱼ) + τδ) / (A² + AB(ρᵢ+ρⱼ) + B²ρᵢρⱼ)``.
    Y:
        ``Π_{k ≤ n-2} (Bρ_{s_k} + τδ)/(Bρ_{s_k} + A)`` — positive and
        independent of ρᵢ, ρⱼ.
    Z:
        ``X(ρ_{s_1}, …, ρ_{s_{n-2}})`` — also independent of ρᵢ, ρⱼ
        (zero when n = 2).
    """

    lead: float
    Y: float
    Z: float

    @property
    def x_value(self) -> float:
        """Reassemble ``X(P) = lead·Y + Z``."""
        return self.lead * self.Y + self.Z


def x_decomposition(profile: ProfileLike, params: ModelParams,
                    i: int, j: int) -> XDecomposition:
    """Compute eq. (3)'s decomposition with computers ``i`` and ``j`` last.

    Places computer ``j`` at startup position n−1 and computer ``i`` at
    position n (the arrangement used in the Theorem 3/4 proofs), then
    returns the lead fraction together with the Y and Z factors.  Because
    X is startup-order invariant, ``x_decomposition(...).x_value`` equals
    :func:`x_measure` for any valid (i, j) — a property the test suite
    checks.

    Parameters
    ----------
    profile:
        The cluster's profile (n ≥ 2).
    params:
        Architectural model parameters.
    i, j:
        Distinct zero-based indices of the two focus computers.
    """
    rho = _rho_array(profile)
    n = rho.size
    if n < 2:
        raise InvalidParameterError("x_decomposition needs at least 2 computers")
    if i == j or not (0 <= i < n) or not (0 <= j < n):
        raise InvalidParameterError(
            f"i and j must be distinct indices in [0, {n}), got i={i}, j={j}")
    A, B, td = params.A, params.B, params.tau_delta
    rho_i, rho_j = float(rho[i]), float(rho[j])
    rest = np.delete(rho, [i, j])

    s = rho_i + rho_j
    lead = (A + B * s + td) / (A * A + A * B * s + B * B * rho_i * rho_j)
    if rest.size:
        Y = float(np.prod((B * rest + td) / (B * rest + A)))
        Z = x_measure(rest, params)
    else:
        Y, Z = 1.0, 0.0
    return XDecomposition(lead=lead, Y=Y, Z=Z)
