"""The Homogeneous-Equivalent Computing Rate (paper §2.4, Proposition 1).

``X(P)`` is tractable but "not very perspicuous": the paper therefore
calibrates a heterogeneous cluster against homogeneous ones.  The HECR
``ρ_C`` of a cluster ``C`` with profile ``P`` is the largest common rate
``ρ`` such that the homogeneous n-computer cluster ``C^(ρ)`` is at least
as powerful: ``X(P^(ρ_C)) ≥ X(P)``.  Since ``X(P^(ρ))`` is strictly
decreasing in ρ (slower computers do less work), the HECR is simply the
solution of ``X(P^(ρ)) = X(P)``; **smaller HECR ⇒ more powerful cluster**.

Proposition 1 gives the closed form

.. math::

    ρ_C = \\frac{A − τδ}{B − (1 − (A − τδ)X(P))^{1/n} B} − \\frac{A}{B}.

Numerical care: in the Table-1 regime ``(A − τδ)·X ≈ 10⁻⁵·X``, so the
inner ``1 − (1 − ε)^{1/n}`` suffers catastrophic cancellation if evaluated
naively.  We use ``-expm1(log1p(-ε)/n)`` instead, and we provide an
independent bisection inverter used to cross-validate the closed form in
the test suite.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

import numpy as np

from repro.core.homogeneous import homogeneous_x
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["hecr", "hecr_from_x", "hecr_bisect", "hecr_many"]

ProfileLike = Union[Profile, Iterable[float]]


def hecr_from_x(x_value: float, n: int, params: ModelParams) -> float:
    """Proposition 1's closed form: HECR of a cluster with X-measure ``x_value``.

    Parameters
    ----------
    x_value:
        The cluster's X(P); must satisfy ``0 < (A − τδ)·X < 1`` (every
        realisable profile does — X saturates at ``1/(A − τδ)``).
    n:
        Number of computers in the cluster.
    params:
        Architectural model parameters.

    Returns
    -------
    float
        The equivalent homogeneous rate ρ_C (> 0; smaller is faster).
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if x_value <= 0 or not math.isfinite(x_value):
        raise InvalidParameterError(f"x_value must be positive and finite, got {x_value!r}")
    A, B, td = params.A, params.B, params.tau_delta
    gap = A - td
    if gap == 0.0:
        # A = τδ limit: X(P^(ρ)) = n/(Bρ + A)  ⇒  ρ = (n/X − A)/B
        rho = (n / x_value - A) / B
    else:
        eps = gap * x_value
        if eps >= 1.0:
            raise InvalidParameterError(
                f"x_value={x_value!r} exceeds the saturation bound 1/(A−τδ)="
                f"{1.0 / gap!r}; no homogeneous equivalent exists")
        # one_minus_D = 1 − (1 − ε)^{1/n}, computed cancellation-free.
        one_minus_D = -math.expm1(math.log1p(-eps) / n)
        rho = gap / (B * one_minus_D) - A / B
    if rho <= 0:
        raise InvalidParameterError(
            f"derived HECR is non-positive ({rho!r}): the cluster is more "
            f"powerful than any homogeneous cluster of finite rate under "
            f"these parameters")
    return rho


def hecr(profile: ProfileLike, params: ModelParams, *,
         x: float | None = None) -> float:
    """The HECR ``ρ_C`` of a heterogeneous cluster (Proposition 1).

    A precomputed ``x`` (the profile's X-measure, e.g. from a sweep that
    already evaluated it) skips the eq.-(1) pass; the result is
    bit-identical because the same float feeds the closed form.

    Examples
    --------
    >>> from repro.core.params import PAPER_TABLE1
    >>> from repro.core.profile import Profile
    >>> round(hecr(Profile.linear(8), PAPER_TABLE1), 3)   # Table 3, C1, n=8
    0.368
    """
    if isinstance(profile, Profile):
        n = profile.n
    else:
        profile = Profile(profile)
        n = profile.n
    if x is None:
        x = x_measure(profile, params)
    return hecr_from_x(x, n, params)


def hecr_many(profiles: np.ndarray, x_values: np.ndarray, params: ModelParams) -> np.ndarray:
    """Vectorised Proposition-1 closed form for a batch of equal-size profiles.

    Parameters
    ----------
    profiles:
        Array of shape ``(m, n)`` — only its column count ``n`` is used.
    x_values:
        Shape ``(m,)`` of precomputed X-measures (see
        :func:`repro.core.measure.x_measure_many`).
    params:
        Architectural model parameters.

    Returns
    -------
    numpy.ndarray
        Shape ``(m,)`` of HECRs.  Entries are NaN for *saturated*
        clusters whose X rounds to the 1/(A−τδ) bound in float64 — such
        clusters sit beyond the resolution of any finite homogeneous
        equivalent.
    """
    arr = np.asarray(profiles, dtype=float)
    x = np.asarray(x_values, dtype=float)
    if arr.ndim != 2 or x.shape != (arr.shape[0],):
        raise InvalidParameterError(
            f"shape mismatch: profiles {arr.shape}, x_values {x.shape}")
    n = arr.shape[1]
    A, B, td = params.A, params.B, params.tau_delta
    gap = A - td
    if gap == 0.0:
        return (n / x - A) / B
    eps = gap * x
    if np.any(eps <= 0.0):
        raise InvalidParameterError("x_values must be positive")
    # Mathematically eps < 1 − (τδ/A)^n strictly for every real profile,
    # but extreme profiles (thousands of near-floor ρ values) can round
    # eps to 1.0 in float64.  Those clusters are saturated — beyond any
    # finite homogeneous equivalent's resolution — so report NaN for them
    # instead of a garbage rate.
    saturated = eps >= 1.0 - 1e-14
    eps_safe = np.where(saturated, 0.5, eps)
    one_minus_D = -np.expm1(np.log1p(-eps_safe) / n)
    out = gap / (B * one_minus_D) - A / B
    out[saturated] = np.nan
    return out


def hecr_bisect(profile: ProfileLike, params: ModelParams, *,
                rtol: float = 1e-13, max_iter: int = 200) -> float:
    """HECR by direct numeric inversion of eq. (2) — no closed form.

    Solves ``X(P^(ρ)) = X(P)`` for ρ by bisection on the strictly
    decreasing function ``ρ ↦ X(P^(ρ))``.  Slower than :func:`hecr` but
    independent of Proposition 1's algebra; the two agreeing to ~13
    significant digits is a regression test for both.

    Parameters
    ----------
    profile:
        The cluster's heterogeneity profile.
    params:
        Architectural model parameters.
    rtol:
        Relative width of the final bracket.
    max_iter:
        Bisection iteration cap.
    """
    if not isinstance(profile, Profile):
        profile = Profile(profile)
    n = profile.n
    target = x_measure(profile, params)

    # Bracket: a homogeneous cluster at the profile's fastest rate is at
    # least as powerful (minorization), one at the slowest rate at most.
    lo = profile.fastest_rho  # X(P^(lo)) >= target
    hi = profile.slowest_rho  # X(P^(hi)) <= target
    if homogeneous_x(n, lo, params) < target:  # numerical safety margin
        lo *= 0.5
    if homogeneous_x(n, hi, params) > target:
        hi *= 2.0

    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if homogeneous_x(n, mid, params) >= target:
            lo = mid  # homogeneous cluster still at least as powerful
        else:
            hi = mid
        if hi - lo <= rtol * hi:
            break
    return 0.5 * (lo + hi)
