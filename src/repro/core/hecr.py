"""The Homogeneous-Equivalent Computing Rate (paper §2.4, Proposition 1).

``X(P)`` is tractable but "not very perspicuous": the paper therefore
calibrates a heterogeneous cluster against homogeneous ones.  The HECR
``ρ_C`` of a cluster ``C`` with profile ``P`` is the largest common rate
``ρ`` such that the homogeneous n-computer cluster ``C^(ρ)`` is at least
as powerful: ``X(P^(ρ_C)) ≥ X(P)``.  Since ``X(P^(ρ))`` is strictly
decreasing in ρ (slower computers do less work), the HECR is simply the
solution of ``X(P^(ρ)) = X(P)``; **smaller HECR ⇒ more powerful cluster**.

Proposition 1 gives the closed form

.. math::

    ρ_C = \\frac{A − τδ}{B − (1 − (A − τδ)X(P))^{1/n} B} − \\frac{A}{B}.

Numerical care: in the Table-1 regime ``(A − τδ)·X ≈ 10⁻⁵·X``, so the
inner ``1 − (1 − ε)^{1/n}`` suffers catastrophic cancellation if evaluated
naively.  We use ``-expm1(log1p(-ε)/n)`` instead, and we provide an
independent bisection inverter used to cross-validate the closed form in
the test suite.
"""

from __future__ import annotations

import math
from typing import Iterable, Union

import numpy as np

from repro.core.batch_kernels import hecr_from_x_many
from repro.core.homogeneous import homogeneous_x
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError

__all__ = ["hecr", "hecr_from_x", "hecr_bisect", "hecr_many"]

ProfileLike = Union[Profile, Iterable[float]]

#: Cap on bracket-widening halvings/doublings in :func:`hecr_bisect` —
#: 64 octaves span far more than float64's dynamic range ever needs, and
#: the cap keeps saturated targets (see the bracket comment below) from
#: widening forever.
_MAX_WIDENINGS = 64


def hecr_from_x(x_value: float, n: int, params: ModelParams) -> float:
    """Proposition 1's closed form: HECR of a cluster with X-measure ``x_value``.

    Parameters
    ----------
    x_value:
        The cluster's X(P); must satisfy ``0 < (A − τδ)·X < 1`` (every
        realisable profile does — X saturates at ``1/(A − τδ)``).
    n:
        Number of computers in the cluster.
    params:
        Architectural model parameters.

    Returns
    -------
    float
        The equivalent homogeneous rate ρ_C (> 0; smaller is faster).
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if x_value <= 0 or not math.isfinite(x_value):
        raise InvalidParameterError(f"x_value must be positive and finite, got {x_value!r}")
    A, B, td = params.A, params.B, params.tau_delta
    gap = A - td
    if gap == 0.0:
        # A = τδ limit: X(P^(ρ)) = n/(Bρ + A)  ⇒  ρ = (n/X − A)/B
        rho = (n / x_value - A) / B
    else:
        eps = gap * x_value
        if eps >= 1.0:
            raise InvalidParameterError(
                f"x_value={x_value!r} exceeds the saturation bound 1/(A−τδ)="
                f"{1.0 / gap!r}; no homogeneous equivalent exists")
        # one_minus_D = 1 − (1 − ε)^{1/n}, computed cancellation-free.
        one_minus_D = -math.expm1(math.log1p(-eps) / n)
        rho = gap / (B * one_minus_D) - A / B
    if rho <= 0:
        raise InvalidParameterError(
            f"derived HECR is non-positive ({rho!r}): the cluster is more "
            f"powerful than any homogeneous cluster of finite rate under "
            f"these parameters")
    return rho


def hecr(profile: ProfileLike, params: ModelParams, *,
         x: float | None = None) -> float:
    """The HECR ``ρ_C`` of a heterogeneous cluster (Proposition 1).

    A precomputed ``x`` (the profile's X-measure, e.g. from a sweep that
    already evaluated it) skips the eq.-(1) pass; the result is
    bit-identical because the same float feeds the closed form.

    Examples
    --------
    >>> from repro.core.params import PAPER_TABLE1
    >>> from repro.core.profile import Profile
    >>> round(hecr(Profile.linear(8), PAPER_TABLE1), 3)   # Table 3, C1, n=8
    0.368
    """
    if isinstance(profile, Profile):
        n = profile.n
    else:
        profile = Profile(profile)
        n = profile.n
    if x is None:
        x = x_measure(profile, params)
    return hecr_from_x(x, n, params)


def hecr_many(profiles: np.ndarray, x_values: np.ndarray, params: ModelParams) -> np.ndarray:
    """Vectorised Proposition-1 closed form for a batch of equal-size profiles.

    Parameters
    ----------
    profiles:
        Array of shape ``(m, n)`` — only its column count ``n`` is used.
    x_values:
        Shape ``(m,)`` of precomputed X-measures (see
        :func:`repro.core.measure.x_measure_many`).
    params:
        Architectural model parameters.

    Returns
    -------
    numpy.ndarray
        Shape ``(m,)`` of HECRs.  Entries are NaN for rows the scalar
        :func:`hecr_from_x` would refuse: *saturated* clusters whose X
        rounds to the 1/(A−τδ) bound in float64, **and** clusters whose
        derived rate comes out non-positive (just below the bound the
        closed form's cancellation would otherwise emit a small negative
        rate where the scalar path raises).  Both families sit beyond
        the resolution of any finite homogeneous equivalent.
    """
    arr = np.asarray(profiles, dtype=float)
    x = np.asarray(x_values, dtype=float)
    if arr.ndim != 2 or x.shape != (arr.shape[0],):
        raise InvalidParameterError(
            f"shape mismatch: profiles {arr.shape}, x_values {x.shape}")
    if arr.shape[1] == 0:
        raise InvalidParameterError(
            f"profiles must have at least one computer per row (n >= 1), "
            f"got shape {arr.shape}")
    return hecr_from_x_many(x, arr.shape[1], params)


def hecr_bisect(profile: ProfileLike, params: ModelParams, *,
                rtol: float = 1e-13, max_iter: int = 200) -> float:
    """HECR by direct numeric inversion of eq. (2) — no closed form.

    Solves ``X(P^(ρ)) = X(P)`` for ρ by bisection on the strictly
    decreasing function ``ρ ↦ X(P^(ρ))``.  Slower than :func:`hecr` but
    independent of Proposition 1's algebra; the two agreeing to ~13
    significant digits is a regression test for both.

    Parameters
    ----------
    profile:
        The cluster's heterogeneity profile.
    params:
        Architectural model parameters.
    rtol:
        Relative width of the final bracket.
    max_iter:
        Bisection iteration cap.
    """
    if not isinstance(profile, Profile):
        profile = Profile(profile)
    n = profile.n
    target = x_measure(profile, params)

    # Bracket: a homogeneous cluster at the profile's fastest rate is at
    # least as powerful (minorization), one at the slowest rate at most.
    # Float rounding can leave either endpoint on the wrong side, so
    # widen until the bracket actually brackets — one halving/doubling
    # is not always enough.  If the cap is exhausted on the lo side, no
    # homogeneous rate reaches the target at all: eq. (1)'s cumprod-sum
    # has rounded X(P) past the float image of eq. (2)'s expm1 form
    # (X(P^(ρ)) plateaus below the target as ρ → 0), the same saturated
    # family for which the closed form raises — so raise, rather than
    # silently converge onto an arbitrary bound.
    lo = profile.fastest_rho  # X(P^(lo)) >= target
    hi = profile.slowest_rho  # X(P^(hi)) <= target
    for _ in range(_MAX_WIDENINGS):
        if homogeneous_x(n, lo, params) >= target:
            break
        lo *= 0.5
    else:
        raise InvalidParameterError(
            f"X(P)={target!r} exceeds every homogeneous n={n} cluster's "
            f"float-representable X-measure (saturated cluster); no "
            f"homogeneous equivalent exists")
    for _ in range(_MAX_WIDENINGS):
        if homogeneous_x(n, hi, params) <= target:
            break
        hi *= 2.0
    else:  # pragma: no cover - X(P^(ρ)) → 0 as ρ → ∞, so hi always lands
        raise InvalidParameterError(
            f"could not bracket X(P)={target!r} from above for n={n}")

    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if homogeneous_x(n, mid, params) >= target:
            lo = mid  # homogeneous cluster still at least as powerful
        else:
            hi = mid
        if hi - lo <= rtol * hi:
            break
    return 0.5 * (lo + hi)
