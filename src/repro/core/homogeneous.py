"""Closed forms for homogeneous clusters (paper eq. (2)).

For the homogeneous cluster ``C^(ρ)`` with profile ``P^(ρ) = ⟨ρ, …, ρ⟩``
the X-measure's sum telescopes into the geometric-series closed form

.. math::

    X(P^{(ρ)}) = \\frac{1}{A − τδ}
                 \\left(1 − \\Big(\\frac{Bρ + τδ}{Bρ + A}\\Big)^{n}\\right),

with the ``A = τδ`` limit ``X = n/(Bρ + A)``.  These are the forms
Proposition 1 inverts to define the HECR.  We compute the ``1 − qⁿ``
difference via ``expm1``/``log1p`` so that the nearly-cancelling case
``q → 1`` (communication costs ≪ compute costs, the Table 1 regime) keeps
full relative accuracy.
"""

from __future__ import annotations

import math

from repro.core.params import ModelParams
from repro.errors import InvalidParameterError

__all__ = ["homogeneous_x", "homogeneous_work_rate", "homogeneous_size_for_x"]


def homogeneous_x(n: int, rho: float, params: ModelParams) -> float:
    """``X(P^(ρ))`` for an n-computer homogeneous cluster — eq. (2).

    Parameters
    ----------
    n:
        Number of computers (≥ 1).
    rho:
        Common ρ-value (> 0; may exceed 1, since HECR calibration uses
        un-normalised ρ).
    params:
        Architectural model parameters.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    if rho <= 0 or not math.isfinite(rho):
        raise InvalidParameterError(f"rho must be positive and finite, got {rho!r}")
    A, B, td = params.A, params.B, params.tau_delta
    gap = A - td
    denom = B * rho + A
    if gap == 0.0:
        return n / denom
    # q = (Bρ+τδ)/(Bρ+A) = 1 − gap/denom;  X = (1 − qⁿ)/gap.
    # 1 − qⁿ = −expm1(n·log1p(−gap/denom)) keeps accuracy when gap/denom ≪ 1.
    one_minus_qn = -math.expm1(n * math.log1p(-gap / denom))
    return one_minus_qn / gap


def homogeneous_work_rate(n: int, rho: float, params: ModelParams) -> float:
    """Asymptotic per-time-unit work of an n-computer homogeneous cluster."""
    X = homogeneous_x(n, rho, params)
    return 1.0 / (params.tau_delta + 1.0 / X)


def homogeneous_size_for_x(rho: float, target_x: float, params: ModelParams) -> float:
    """Invert eq. (2) for ``n``: how many ρ-computers reach a given X?

    Returns the (real-valued) cluster size ``n`` such that
    ``homogeneous_x(n, rho) = target_x``; callers typically ceil it.  This
    answers "how many commodity machines equal this heterogeneous
    cluster?" — the complementary calibration to the HECR, which fixes n
    and solves for ρ.

    Raises
    ------
    InvalidParameterError
        If ``target_x`` is not attainable: X is bounded above by
        ``1/(A − τδ)`` as n → ∞ (for A > τδ).
    """
    if target_x <= 0 or not math.isfinite(target_x):
        raise InvalidParameterError(f"target_x must be positive and finite, got {target_x!r}")
    if rho <= 0 or not math.isfinite(rho):
        raise InvalidParameterError(f"rho must be positive and finite, got {rho!r}")
    A, B, td = params.A, params.B, params.tau_delta
    gap = A - td
    denom = B * rho + A
    if gap == 0.0:
        return target_x * denom
    saturation = 1.0 / gap
    if target_x >= saturation:
        raise InvalidParameterError(
            f"target X={target_x!r} is unattainable: homogeneous clusters of "
            f"rho={rho!r} saturate at X={saturation!r}")
    # target = (1 − qⁿ)/gap  ⇒  n = log(1 − gap·target)/log q
    return math.log1p(-gap * target_x) / math.log1p(-gap / denom)
