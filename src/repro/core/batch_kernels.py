"""Columnar many-profile kernels: the ``(m, n)`` ρ-matrix fast path.

Every §4 study — the variance-predictor trials, the majorization
ablation, HECR calibration — is defined over *populations* of clusters,
tens of thousands of random profile comparisons per table row, and the
serving layer coalesces whole micro-batches of profile evaluations.
Evaluating one :class:`~repro.core.profile.Profile` at a time makes the
Python interpreter the bottleneck long before NumPy is.

:class:`ProfileBatch` stores m same-size profiles as one C-contiguous
``(m, n)`` ρ-matrix, validates it **once** at construction, and exposes
row-vectorised kernels for everything the scalar core computes:

* ``x`` — eq. (1) via one batched exclusive cumulative product;
* ``work_rates`` / ``work_production`` — Theorem 2;
* ``hecr`` — Proposition 1's closed form (:func:`hecr_from_x_many`);
* the §4.2 row statistics (variance, geometric/harmonic mean, min-ρ);
* pairwise predictor kernels (:func:`moment_predictions`,
  :func:`minorization_predictions`, :func:`majorization_predictions`)
  over two aligned batches;
* :class:`BatchXEvaluator` — the incremental single-ρ edit previews of
  :class:`~repro.core.measure.XEvaluator`, one O(1) query *per row*.

**Parity is the contract.**  Each kernel performs, per row, exactly the
elementwise arithmetic and the same NumPy reduction its scalar
counterpart performs on a 1-D array.  NumPy's pairwise summation (and
``var``/``mean`` reductions built on it) produce bit-identical results
for a contiguous row of an ``(m, n)`` array and the equivalent 1-D
array, so ``ProfileBatch(rows).x(params)[i] == x_measure(rows[i],
params)`` holds **bitwise** — not merely to tolerance — which is what
lets the service coalescer route its bit-identity-guaranteed responses
through the batch without moving a single float.  The one exception is
HECR: NumPy's SIMD ``log1p``/``expm1`` over arrays may differ from the
scalar path's libm calls by 1 ulp, so :func:`hecr_from_x_many` agrees
with :func:`~repro.core.hecr.hecr_from_x` to ≤1e-12 relative rather
than bitwise.  The property suite
(``tests/properties/test_batch_parity_properties.py``) pins both
contracts for every kernel over random batches.

Empty-batch semantics: an ``(0, n)`` matrix is a valid batch of zero
profiles — every kernel returns a shape-``(0,)`` (or ``(0, …)``) result,
so sharded pipelines handle empty shards without special-casing.  An
``(m, 0)`` matrix (profiles with zero computers) is rejected with a
shape-specific error at construction.

This module sits at the bottom of the core dependency stack (it imports
only ``params``, ``profile`` and ``errors``);
:mod:`repro.core.measure` and :mod:`repro.core.hecr` build their batch
entry points on it.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError, InvalidProfileError

__all__ = [
    "ProfileBatch",
    "BatchXEvaluator",
    "hecr_from_x_many",
    "moment_predictions",
    "variance_predictions",
    "minorization_predictions",
    "majorization_predictions",
    "MOMENT_STATISTICS",
]

#: Tolerances mirrored from the scalar predictor modules (kept as local
#: constants so this module stays importable from ``repro.core`` without
#: touching ``repro.predictors``, which imports core).
_MEAN_RTOL = 1e-9       # predictors.variance.MEAN_RTOL
_MAJORIZATION_RTOL = 1e-9  # predictors.majorization._RTOL

#: Per-params derived-column cache entries kept per batch (LRU-ish: the
#: oldest key is dropped; real workloads touch one or two param sets).
_COLUMN_CACHE_ENTRIES = 8


def _validate_matrix(rho, *, copy: bool) -> np.ndarray:
    arr = np.array(rho, dtype=float, copy=True) if copy \
        else np.ascontiguousarray(rho, dtype=float)
    if arr.ndim != 2:
        raise InvalidParameterError(
            f"profiles must be 2-D (m, n), got shape {arr.shape}")
    if arr.shape[1] == 0:
        raise InvalidParameterError(
            f"profiles must have at least one computer per row (n >= 1), "
            f"got shape {arr.shape}")
    # np.any/np.all on an (0, n) matrix are vacuously fine: an empty
    # batch of well-shaped profiles is valid and yields empty results.
    if np.any(arr <= 0) or not np.all(np.isfinite(arr)):
        raise InvalidParameterError("profiles must be positive and finite")
    return arr


class _Columns:
    """Derived per-(τ, π, δ) columns shared by the X/W/HECR kernels.

    ``b_rho = B·ρ`` feeds the LP constraint builder; ``denom = Bρ + A``
    and ``numer = Bρ + τδ`` are eq. (1)'s per-computer factors;
    ``prefix`` is the exclusive cumulative product of
    ``ratios = numer/denom``; ``terms = prefix/denom`` sums to ``x``.
    ``cum`` (the inclusive cumulative sum of ``terms``, needed only by
    edit previews) is computed lazily on first access so the hot
    construct-then-X path skips one full (m, n) pass.
    """

    __slots__ = ("b_rho", "denom", "numer", "ratios", "prefix", "terms",
                 "x", "_cum")

    def __init__(self, b_rho: np.ndarray, denom: np.ndarray,
                 numer: np.ndarray, ratios: np.ndarray, prefix: np.ndarray,
                 terms: np.ndarray, x: np.ndarray) -> None:
        self.b_rho = b_rho
        self.denom = denom
        self.numer = numer
        self.ratios = ratios
        self.prefix = prefix
        self.terms = terms
        self.x = x
        self._cum: np.ndarray | None = None

    @property
    def cum(self) -> np.ndarray:
        if self._cum is None:
            self._cum = np.cumsum(self.terms, axis=1)
        return self._cum


def _build_columns(arr: np.ndarray, params: ModelParams) -> _Columns:
    A, B, td = params.A, params.B, params.tau_delta
    b_rho = B * arr
    denom = b_rho + A
    numer = b_rho + td
    ratios = numer / denom
    # Exclusive prefix product per row: [1, r1, r1·r2, …] — the same
    # sequential cumprod x_measure runs on its 1-D array.
    prefix = np.empty_like(denom)
    prefix[:, 0] = 1.0
    np.cumprod(ratios[:, :-1], axis=1, out=prefix[:, 1:])
    terms = prefix / denom
    # Row-wise pairwise summation over contiguous memory: bit-identical
    # to float(np.sum(...)) of the row on its own.
    x = np.sum(terms, axis=1)
    return _Columns(b_rho=b_rho, denom=denom, numer=numer, ratios=ratios,
                    prefix=prefix, terms=terms, x=x)


def _readonly(arr: np.ndarray) -> np.ndarray:
    view = arr.view()
    view.flags.writeable = False
    return view


class ProfileBatch:
    """m same-size heterogeneity profiles as one validated ρ-matrix.

    Parameters
    ----------
    rho:
        Array-like of shape ``(m, n)``: m profiles of n computers each.
        Every entry must be positive and finite; ``m = 0`` is allowed
        (the empty batch), ``n = 0`` is not.
    copy:
        Copy the input (default).  ``copy=False`` adopts the array
        without copying when it is already C-contiguous ``float64`` —
        the caller must then not mutate it.

    Notes
    -----
    Construction cost is one O(m·n) validation pass.  Derived columns
    (``Bρ + A``, ``Bρ + τδ``, prefix products, X) are computed lazily
    per parameter set and cached, so asking for ``x`` and then ``hecr``
    under the same params runs eq. (1) once.
    """

    __slots__ = ("_rho", "_columns", "_sorted_desc")

    def __init__(self, rho, *, copy: bool = True) -> None:
        self._rho = _validate_matrix(rho, copy=copy)
        self._columns: dict[tuple[float, float, float], _Columns] = {}
        self._sorted_desc: np.ndarray | None = None

    @classmethod
    def from_profiles(cls, profiles) -> "ProfileBatch":
        """Stack an iterable of equal-size :class:`Profile` objects."""
        rows = [p.rho if isinstance(p, Profile) else np.asarray(p, dtype=float)
                for p in profiles]
        if not rows:
            raise InvalidParameterError(
                "from_profiles needs at least one profile; build an empty "
                "batch with ProfileBatch(np.empty((0, n)))")
        sizes = {r.shape for r in rows}
        if len(sizes) != 1:
            raise InvalidProfileError(
                f"cannot batch profiles of different sizes: {sorted(sizes)}")
        return cls(np.stack(rows), copy=False)

    # -- shape ---------------------------------------------------------
    @property
    def rho(self) -> np.ndarray:
        """The ``(m, n)`` ρ-matrix as a read-only view."""
        return _readonly(self._rho)

    @property
    def m(self) -> int:
        """Number of profiles in the batch."""
        return int(self._rho.shape[0])

    @property
    def n(self) -> int:
        """Number of computers per profile."""
        return int(self._rho.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.m, self.n)

    def __len__(self) -> int:
        return self.m

    def row(self, i: int) -> Profile:
        """Row ``i`` as a scalar :class:`Profile`."""
        return Profile(self._rho[i])

    def __repr__(self) -> str:
        return f"ProfileBatch(m={self.m}, n={self.n})"

    # -- derived columns ----------------------------------------------
    def columns(self, params: ModelParams) -> _Columns:
        """The cached derived columns for ``params`` (computed once)."""
        key = (params.tau, params.pi, params.delta)
        cols = self._columns.get(key)
        if cols is None:
            cols = _build_columns(self._rho, params)
            self._columns[key] = cols
            while len(self._columns) > _COLUMN_CACHE_ENTRIES:
                self._columns.pop(next(iter(self._columns)))
        return cols

    # -- eq. (1) / Theorem 2 kernels ----------------------------------
    def x(self, params: ModelParams) -> np.ndarray:
        """``X(Pᵢ)`` per row — bit-identical to per-row ``x_measure``."""
        return self.columns(params).x.copy()

    def work_rates(self, params: ModelParams, *,
                   x: np.ndarray | None = None) -> np.ndarray:
        """Per-row asymptotic work rate ``1/(τδ + 1/X)`` (Theorem 2)."""
        if x is None:
            x = self.columns(params).x
        return 1.0 / (params.tau_delta + 1.0 / x)

    def work_production(self, params: ModelParams, lifespan: float, *,
                        x: np.ndarray | None = None) -> np.ndarray:
        """Per-row ``W(L; Pᵢ) = L / (τδ + 1/X(Pᵢ))``."""
        if lifespan <= 0 or not np.isfinite(lifespan):
            raise InvalidParameterError(
                f"lifespan must be positive and finite, got {lifespan!r}")
        return lifespan * self.work_rates(params, x=x)

    def hecr(self, params: ModelParams, *,
             x: np.ndarray | None = None) -> np.ndarray:
        """Per-row HECR (Proposition 1); NaN for saturated/unreachable rows.

        See :func:`hecr_from_x_many` for the NaN contract.
        """
        if x is None:
            x = self.columns(params).x
        return hecr_from_x_many(x, self.n, params)

    def evaluator(self, params: ModelParams) -> "BatchXEvaluator":
        """A :class:`BatchXEvaluator` over this batch's current rows."""
        return BatchXEvaluator(self._rho, params)

    # -- §4.2 row statistics ------------------------------------------
    def means(self) -> np.ndarray:
        """Row arithmetic means (``Profile.mean`` per row, bitwise)."""
        return self._rho.mean(axis=1)

    def variances(self) -> np.ndarray:
        """Row population variances — eq. (7), ``Profile.variance``."""
        return self._rho.var(axis=1)

    def stds(self) -> np.ndarray:
        """Row population standard deviations."""
        return self._rho.std(axis=1)

    def geometric_means(self) -> np.ndarray:
        """Row geometric means ``exp(mean(log ρ))``."""
        return np.exp(np.mean(np.log(self._rho), axis=1))

    def harmonic_means(self) -> np.ndarray:
        """Row harmonic means ``n / Σ(1/ρ)`` — the ablation's statistic."""
        return self.n / np.sum(1.0 / self._rho, axis=1)

    def min_rho(self) -> np.ndarray:
        """Row minima (each profile's fastest computer)."""
        return self._rho.min(axis=1)

    def max_rho(self) -> np.ndarray:
        """Row maxima (each profile's slowest computer)."""
        return self._rho.max(axis=1)

    def totals(self) -> np.ndarray:
        """Row sums of ρ — majorization's conserved budget."""
        return self._rho.sum(axis=1)

    def sorted_desc(self) -> np.ndarray:
        """Rows sorted nonincreasing (power order), cached, read-only."""
        if self._sorted_desc is None:
            self._sorted_desc = np.sort(self._rho, axis=1)[:, ::-1]
        return _readonly(self._sorted_desc)


# ---------------------------------------------------------------------
# Proposition 1, vectorised (the fixed hecr_many core)
# ---------------------------------------------------------------------
def hecr_from_x_many(x_values: np.ndarray, n: int,
                     params: ModelParams) -> np.ndarray:
    """Vectorised Proposition-1 closed form over precomputed X-values.

    Parameters
    ----------
    x_values:
        Shape ``(m,)`` of positive X-measures.
    n:
        Common cluster size (≥ 1).
    params:
        Architectural model parameters.

    Returns
    -------
    numpy.ndarray
        Shape ``(m,)`` of HECRs.  An entry is **NaN** whenever the
        scalar :func:`~repro.core.hecr.hecr_from_x` would refuse the
        row: X at/above the ``1/(A − τδ)`` saturation bound *or* a
        derived rate that is non-positive (a cluster more powerful than
        any finite-rate homogeneous one at this float resolution).
        Finite entries agree with the scalar path to ≤1e-12 relative
        (NumPy's vectorised ``log1p``/``expm1`` can differ from libm by
        1 ulp); every other batch kernel is bitwise.
        Returning NaN for the whole non-positive/saturated family —
        rather than only for ``eps`` rounding to 1 — is what keeps the
        batch path sign-consistent with the scalar path: near the bound
        the closed form's cancellation can otherwise emit small
        *negative* rates.  The NaN set matches the scalar refusal set
        exactly (``eps >= 1`` or derived rate ≤ 0): a padded
        ``eps >= 1 − 1e-14`` band would wrongly NaN large-gap rows the
        scalar path accepts.

    Raises
    ------
    InvalidParameterError
        For ``n < 1`` or non-positive/non-finite ``x_values`` — those
        are caller bugs, not saturated clusters.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    x = np.asarray(x_values, dtype=float)
    if np.any(x <= 0.0) or not np.all(np.isfinite(x)):
        raise InvalidParameterError("x_values must be positive")
    A, B, td = params.A, params.B, params.tau_delta
    gap = A - td
    if gap == 0.0:
        # A = τδ limit: X(P^(ρ)) = n/(Bρ + A)  ⇒  ρ = (n/X − A)/B
        out = (n / x - A) / B
        out[out <= 0.0] = np.nan
        return out
    eps = gap * x
    # Mathematically eps < 1 strictly for every real profile, but
    # extreme profiles can round eps to 1.0 in float64; and just below
    # the bound the ``gap/(B·(1−D)) − A/B`` difference can cancel to a
    # non-positive rate.  Both regimes mean "beyond any finite
    # homogeneous equivalent's resolution": report NaN for them.  The
    # cutoff is ``eps >= 1.0`` — exactly the scalar path's refusal, no
    # wider: in large-gap regimes a rate just below the bound is still
    # positive and valid, and a padded band would NaN rows the scalar
    # path accepts.
    saturated = eps >= 1.0
    eps_safe = np.where(saturated, 0.5, eps)
    one_minus_D = -np.expm1(np.log1p(-eps_safe) / n)
    out = gap / (B * one_minus_D) - A / B
    out[saturated | (out <= 0.0)] = np.nan
    return out


# ---------------------------------------------------------------------
# Pairwise predictor kernels (two aligned batches → {0, 1, −1} per row)
# ---------------------------------------------------------------------
#: The §4.3 ablation statistics: name → (ProfileBatch method name,
#: larger_wins), mirroring ``repro.predictors.variance.MOMENT_PREDICTORS``.
MOMENT_STATISTICS: dict[str, tuple[str, bool]] = {
    "variance": ("variances", True),
    "geometric-mean": ("geometric_means", False),
    "harmonic-mean": ("harmonic_means", False),
    "min-rho": ("min_rho", False),
}


def _require_aligned(a: ProfileBatch, b: ProfileBatch) -> None:
    if a.shape != b.shape:
        raise InvalidProfileError(
            f"pairwise prediction compares aligned equal-size batches "
            f"(got shapes {a.shape} vs {b.shape})")


def moment_predictions(batch_a: ProfileBatch, batch_b: ProfileBatch,
                       statistic: str = "variance") -> np.ndarray:
    """Row-wise moment-predictor calls, one per aligned pair.

    Returns an int array over rows: 0 when the statistic says the first
    profile wins, 1 for the second, −1 on an exact tie — the semantics
    of each ``MOMENT_PREDICTORS[statistic]`` scalar predictor, without
    the per-pair Python call.
    """
    _require_aligned(batch_a, batch_b)
    try:
        method, larger_wins = MOMENT_STATISTICS[statistic]
    except KeyError:
        raise InvalidParameterError(
            f"unknown moment statistic {statistic!r}; expected one of "
            f"{sorted(MOMENT_STATISTICS)}") from None
    sa = getattr(batch_a, method)()
    sb = getattr(batch_b, method)()
    out = np.where((sa > sb) == larger_wins, 0, 1)
    out[sa == sb] = -1
    return out


def variance_predictions(batch_a: ProfileBatch,
                         batch_b: ProfileBatch) -> np.ndarray:
    """Row-wise Theorem-5 variance predictions over equal-mean pairs.

    The batched :func:`~repro.predictors.variance.variance_prediction`:
    enforces the equal-mean precondition per row (same relative
    tolerance), then 0/1/−1 by variance comparison.
    """
    _require_aligned(batch_a, batch_b)
    mean_a = batch_a.means()
    mean_b = batch_b.means()
    scale = np.maximum(np.maximum(np.abs(mean_a), np.abs(mean_b)), 1e-300)
    bad = np.abs(mean_a - mean_b) > _MEAN_RTOL * scale
    if np.any(bad):
        i = int(np.argmax(bad))
        raise InvalidProfileError(
            f"variance prediction requires equal mean speeds "
            f"(row {i}: {float(mean_a[i])!r} vs {float(mean_b[i])!r})")
    return moment_predictions(batch_a, batch_b, "variance")


def minorization_predictions(batch_a: ProfileBatch,
                             batch_b: ProfileBatch) -> np.ndarray:
    """Row-wise Proposition-2 verdicts: 0/1 for a strict minorizer, −1
    when neither profile entrywise-dominates after power-ordering."""
    _require_aligned(batch_a, batch_b)
    a = batch_a.sorted_desc()
    b = batch_b.sorted_desc()
    first = np.all(a <= b, axis=1) & np.any(a < b, axis=1)
    second = np.all(b <= a, axis=1) & np.any(b < a, axis=1)
    return np.where(first, 0, np.where(second, 1, -1))


def majorization_predictions(batch_a: ProfileBatch,
                             batch_b: ProfileBatch) -> np.ndarray:
    """Row-wise majorization predictions over equal-sum pairs.

    Exactly :func:`~repro.predictors.majorization.majorization_prediction`
    per row — same descending partial-sum comparison, same relative
    tolerance, same abstention (−1) on equivalent or incomparable rows —
    with the cumulative sums batched.
    """
    _require_aligned(batch_a, batch_b)
    a = batch_a.sorted_desc()
    b = batch_b.sorted_desc()
    total_a = a.sum(axis=1)
    total_b = b.sum(axis=1)
    tol = _MAJORIZATION_RTOL * np.maximum(total_a, 1e-300)
    bad = np.abs(total_a - total_b) > tol
    if np.any(bad):
        i = int(np.argmax(bad))
        raise InvalidProfileError(
            f"majorization compares equal-sum profiles "
            f"(row {i}: {float(total_a[i])!r} vs {float(total_b[i])!r})")
    ca = np.cumsum(a, axis=1)
    cb = np.cumsum(b, axis=1)
    first = np.all(ca[:, :-1] >= cb[:, :-1] - tol[:, None], axis=1)
    second = np.all(cb[:, :-1] >= ca[:, :-1] - tol[:, None], axis=1)
    out = np.full(batch_a.m, -1, dtype=int)
    out[first & ~second] = 0
    out[second & ~first] = 1
    return out


# ---------------------------------------------------------------------
# Batched incremental single-ρ edits
# ---------------------------------------------------------------------
class BatchXEvaluator:
    """The :class:`~repro.core.measure.XEvaluator` generalised to a batch.

    Holds the eq.-(1) cumulative state for every row of an ``(m, n)``
    ρ-matrix, so *"what would X be if row i's ρ_k became ρ'?"* is one
    O(1) vectorised query across all m rows (:meth:`x_with_rho`) — the
    speedup planner's candidate scan for a whole population of clusters
    in a single NumPy expression.

    As with the scalar evaluator, commits (:meth:`set_rho`) rebuild in
    O(m·n) and leave :attr:`x` bit-identical per row to a fresh
    ``x_measure``; only the O(1) previews re-associate the sum and may
    differ at the ~1-ulp-per-term level.
    """

    __slots__ = ("_params", "_rho", "_d", "_r", "_prefix", "_terms",
                 "_cum", "_x")

    def __init__(self, rho, params: ModelParams) -> None:
        self._params = params
        self._rho = _validate_matrix(rho, copy=True)
        self._rebuild()

    def _rebuild(self) -> None:
        cols = _build_columns(self._rho, self._params)
        self._d = cols.denom
        self._r = cols.ratios
        self._prefix = cols.prefix
        self._terms = cols.terms
        self._cum = cols.cum
        self._x = cols.x

    # -- state ---------------------------------------------------------
    @property
    def m(self) -> int:
        return int(self._rho.shape[0])

    @property
    def n(self) -> int:
        return int(self._rho.shape[1])

    @property
    def params(self) -> ModelParams:
        return self._params

    @property
    def rho(self) -> np.ndarray:
        """A copy of the current ρ-matrix."""
        return self._rho.copy()

    @property
    def x(self) -> np.ndarray:
        """Per-row ``X`` — bit-identical to per-row ``x_measure``."""
        return self._x.copy()

    def _validate_edit(self, k, rho_new) -> tuple[np.ndarray, np.ndarray]:
        try:
            idx = np.broadcast_to(np.asarray(k, dtype=int), (self.m,))
            vals = np.broadcast_to(np.asarray(rho_new, dtype=float), (self.m,))
        except ValueError as exc:
            raise InvalidParameterError(
                f"edit indices/values must be scalars or shape ({self.m},) "
                f"arrays: {exc}") from exc
        if idx.size and (idx.min() < 0 or idx.max() >= self.n):
            raise InvalidParameterError(
                f"edit indices must lie in [0, {self.n}), got "
                f"[{idx.min()}, {idx.max()}]")
        if np.any(vals <= 0.0) or not np.all(np.isfinite(vals)):
            raise InvalidParameterError(
                "replacement rho values must be positive and finite")
        return idx, vals

    @staticmethod
    def _pick(arr: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return np.take_along_axis(arr, idx[:, None], axis=1)[:, 0]

    # -- O(1)-per-row preview -----------------------------------------
    def x_with_rho(self, k, rho_new) -> np.ndarray:
        """Per-row ``X`` with ρ at column ``k`` replaced by ``rho_new``.

        ``k`` and ``rho_new`` may be scalars (same edit in every row) or
        shape-``(m,)`` arrays (one edit per row).  Does not mutate the
        evaluator.  Row i agrees bitwise with the scalar evaluator's
        ``x_with_rho`` on the same row, hence with a fresh ``x_measure``
        of the edited profile to ~1 ulp per term.
        """
        idx, vals = self._validate_edit(k, rho_new)
        p = self._params
        d_new = p.B * vals + p.A
        r_new = (p.B * vals + p.tau_delta) / d_new
        head = np.where(idx > 0,
                        self._pick(self._cum, np.maximum(idx - 1, 0)), 0.0)
        tail = self._cum[:, -1] - self._pick(self._cum, idx)
        return head + self._pick(self._prefix, idx) / d_new \
            + r_new * (tail / self._pick(self._r, idx))

    # -- O(m·n) commit -------------------------------------------------
    def set_rho(self, k, rho_new) -> np.ndarray:
        """Commit the edit in every row; returns the exact new per-row X."""
        idx, vals = self._validate_edit(k, rho_new)
        np.put_along_axis(self._rho, idx[:, None], vals[:, None], axis=1)
        self._rebuild()
        return self.x
