"""Core analytical framework: parameters, profiles, X-measure, HECR.

This subpackage implements the paper's primary mathematical objects:

* :class:`repro.core.params.ModelParams` — the architectural environment
  (τ, π, δ) with derived constants A and B (paper §2.1, Tables 1–2);
* :class:`repro.core.profile.Profile` — heterogeneity profiles (§1.1);
* :mod:`repro.core.measure` — the X-measure and work production
  (Theorem 2, eq. (1) and eq. (3));
* :mod:`repro.core.homogeneous` — homogeneous-cluster closed forms (eq. (2));
* :mod:`repro.core.hecr` — the Homogeneous-Equivalent Computing Rate
  (Proposition 1);
* :mod:`repro.core.batch_kernels` — columnar many-profile kernels
  (:class:`~repro.core.batch_kernels.ProfileBatch`): vectorised
  X/W/HECR, row statistics, pairwise predictor kernels and batched
  single-ρ edit previews, each bit-identical per row to its scalar
  counterpart;
* :mod:`repro.core.exact` — exact-rational ground-truth evaluation.
"""

from repro.core.batch_kernels import (
    BatchXEvaluator,
    ProfileBatch,
    hecr_from_x_many,
    majorization_predictions,
    minorization_predictions,
    moment_predictions,
    variance_predictions,
)
from repro.core.compare import ClusterComparison, compare_clusters
from repro.core.exact import (
    homogeneous_x_exact,
    work_rate_exact,
    work_ratio_exact,
    x_measure_exact,
)
from repro.core.hecr import hecr, hecr_bisect, hecr_from_x, hecr_many
from repro.core.homogeneous import (
    homogeneous_size_for_x,
    homogeneous_work_rate,
    homogeneous_x,
)
from repro.core.measure import (
    XDecomposition,
    XEvaluator,
    work_production,
    work_rate,
    work_ratio,
    x_decomposition,
    x_measure,
    x_measure_many,
)
from repro.core.params import (
    FIG34_CALIBRATION,
    NEGLIGIBLE_OVERHEADS,
    PAPER_TABLE1,
    ModelParams,
)
from repro.core.profile import Profile

__all__ = [
    "ModelParams",
    "ClusterComparison",
    "compare_clusters",
    "PAPER_TABLE1",
    "FIG34_CALIBRATION",
    "NEGLIGIBLE_OVERHEADS",
    "Profile",
    "ProfileBatch",
    "BatchXEvaluator",
    "hecr_from_x_many",
    "moment_predictions",
    "variance_predictions",
    "minorization_predictions",
    "majorization_predictions",
    "x_measure",
    "x_measure_many",
    "XEvaluator",
    "work_rate",
    "work_production",
    "work_ratio",
    "XDecomposition",
    "x_decomposition",
    "homogeneous_x",
    "homogeneous_work_rate",
    "homogeneous_size_for_x",
    "hecr",
    "hecr_from_x",
    "hecr_bisect",
    "hecr_many",
    "x_measure_exact",
    "work_rate_exact",
    "work_ratio_exact",
    "homogeneous_x_exact",
]
