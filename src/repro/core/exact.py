"""Exact-rational twins of the core formulas (ground truth for tests).

Every quantity in the paper's framework — X(P), W(L;P), the eq.-(3)
decomposition, the Lemma-1 coefficients — is a *rational* function of the
parameters and ρ-values.  Evaluating them with :class:`fractions.Fraction`
therefore yields exact results, which the property-based test suite uses
to bound the floating-point implementations' error and to verify
identities (Lemma 1, Proposition 3's cross products) with no tolerance
fudging.

These functions are O(n²)-ish with big rationals and are meant for small
n (≲ 64); the float implementations in :mod:`repro.core.measure` handle
the experiment-scale clusters.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence, Union

from repro.core.params import ExactParams, ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidProfileError

__all__ = [
    "exact_rho_values",
    "x_measure_exact",
    "work_rate_exact",
    "homogeneous_x_exact",
    "work_ratio_exact",
]

NumberLike = Union[int, float, Fraction]


def exact_rho_values(profile: Union[Profile, Iterable[NumberLike]]) -> tuple[Fraction, ...]:
    """Convert a profile (or iterable of numbers) to exact Fractions.

    Floats convert via their exact binary value, so float and Fraction
    pipelines evaluate literally the same inputs.
    """
    if isinstance(profile, Profile):
        return profile.exact_rho()
    values = tuple(Fraction(v) for v in profile)
    if not values:
        raise InvalidProfileError("profile must be non-empty")
    if any(v <= 0 for v in values):
        raise InvalidProfileError("profile entries must be strictly positive")
    return values


def _exact_params(params: Union[ModelParams, ExactParams]) -> ExactParams:
    return params if isinstance(params, ExactParams) else params.exact()


def x_measure_exact(profile: Union[Profile, Iterable[NumberLike]],
                    params: Union[ModelParams, ExactParams]) -> Fraction:
    """Exact evaluation of eq. (1)'s ``X(P)``.

    Returns
    -------
    fractions.Fraction
        The exact rational value of X(P).
    """
    rho = exact_rho_values(profile)
    p = _exact_params(params)
    A, B, td = p.A, p.B, p.tau_delta
    total = Fraction(0)
    prefix = Fraction(1)
    for r in rho:
        denom = B * r + A
        total += prefix / denom
        prefix *= (B * r + td) / denom
    return total


def work_rate_exact(profile: Union[Profile, Iterable[NumberLike]],
                    params: Union[ModelParams, ExactParams]) -> Fraction:
    """Exact asymptotic work rate ``1/(τδ + 1/X(P))``."""
    p = _exact_params(params)
    X = x_measure_exact(profile, p)
    return 1 / (p.tau_delta + 1 / X)


def work_ratio_exact(new_profile: Union[Profile, Sequence[NumberLike]],
                     old_profile: Union[Profile, Sequence[NumberLike]],
                     params: Union[ModelParams, ExactParams]) -> Fraction:
    """Exact work ratio ``W(L; P_new)/W(L; P_old)`` (lifespan cancels)."""
    p = _exact_params(params)
    return work_rate_exact(new_profile, p) / work_rate_exact(old_profile, p)


def homogeneous_x_exact(n: int, rho: NumberLike,
                        params: Union[ModelParams, ExactParams]) -> Fraction:
    """Exact eq. (2): ``X(P^(ρ)) = (1 − qⁿ)/(A − τδ)`` with q the decay ratio.

    Falls back to the telescoped sum ``n/(Bρ + A)`` in the A = τδ limit.
    """
    if n < 1:
        raise InvalidProfileError(f"n must be >= 1, got {n}")
    p = _exact_params(params)
    r = Fraction(rho)
    if r <= 0:
        raise InvalidProfileError(f"rho must be positive, got {rho!r}")
    A, B, td = p.A, p.B, p.tau_delta
    denom = B * r + A
    gap = A - td
    if gap == 0:
        return Fraction(n) / denom
    q = (B * r + td) / denom
    return (1 - q ** n) / gap
