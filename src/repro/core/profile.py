"""Heterogeneity profiles (paper §1.1).

A cluster ``C`` of n computers is abstracted by its *(heterogeneity)
profile* ``P = ⟨ρ₁, …, ρₙ⟩``: computer ``Cᵢ`` completes one unit of work in
``ρᵢ`` time units, so **smaller ρ means a faster computer**.  The paper's
conventions, which :class:`Profile` can enforce or establish on demand:

* *power indexing*: ρ₁ ≥ ρ₂ ≥ … ≥ ρₙ (C₁ slowest, Cₙ fastest);
* *normalisation*: the slowest computer has ρ₁ = 1.

Profiles are immutable value objects.  All "mutating" operations
(:meth:`Profile.with_rho_at`, :meth:`Profile.power_ordered`, …) return new
profiles.  The underlying NumPy array is exposed read-only through
:attr:`Profile.rho` so vectorised code can consume it without copying.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import InvalidProfileError
from repro.util.arrays import is_nonincreasing, validate_positive_vector

__all__ = ["Profile"]


class Profile:
    """An immutable vector of ρ-values describing a heterogeneous cluster.

    Parameters
    ----------
    rho:
        Iterable of per-computer ρ-values (time units per work unit).
        Every entry must be strictly positive and finite.
    require_power_order:
        If True, reject inputs that are not sorted nonincreasing.
    require_normalized:
        If True, additionally require ``max(ρ) == 1``.

    Examples
    --------
    >>> p = Profile([1.0, 0.5, 1/3, 0.25])
    >>> p.n
    4
    >>> p.fastest_rho
    0.25
    >>> p.is_power_ordered
    True
    """

    __slots__ = ("_rho",)

    def __init__(self, rho: Iterable[float], *,
                 require_power_order: bool = False,
                 require_normalized: bool = False) -> None:
        arr = validate_positive_vector(rho, name="rho")
        if require_power_order and not is_nonincreasing(arr):
            raise InvalidProfileError(
                "profile is not power-ordered (ρ must be nonincreasing); "
                "use Profile.power_ordered() to sort")
        if require_normalized and arr.max() != 1.0:
            raise InvalidProfileError(
                f"profile is not normalised (max ρ must be 1, got {arr.max()!r}); "
                "use Profile.normalized()")
        arr.setflags(write=False)
        self._rho = arr

    # ------------------------------------------------------------------
    # Factory constructors
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(cls, n: int, rho: float = 1.0) -> "Profile":
        """A homogeneous cluster ``P^(ρ) = ⟨ρ, …, ρ⟩`` of ``n`` computers."""
        if n < 1:
            raise InvalidProfileError(f"cluster size must be >= 1, got {n}")
        return cls(np.full(n, float(rho)))

    @classmethod
    def linear(cls, n: int) -> "Profile":
        """The paper's cluster C₁: ``ρᵢ = 1 − (i − 1)/n`` (§2.5).

        Speeds spread evenly over ``[1/n, 1]``; e.g. for n = 8 the profile
        is ⟨1, 7/8, …, 1/8⟩.
        """
        if n < 1:
            raise InvalidProfileError(f"cluster size must be >= 1, got {n}")
        i = np.arange(1, n + 1, dtype=float)
        return cls(1.0 - (i - 1.0) / n)

    @classmethod
    def harmonic(cls, n: int) -> "Profile":
        """The paper's cluster C₂: ``ρᵢ = 1/i`` (§2.5).

        Speeds weighted into the fast half of the range; for n = 8 the
        profile is ⟨1, 1/2, …, 1/8⟩.
        """
        if n < 1:
            raise InvalidProfileError(f"cluster size must be >= 1, got {n}")
        i = np.arange(1, n + 1, dtype=float)
        return cls(1.0 / i)

    @classmethod
    def geometric(cls, n: int, ratio: float = 0.5) -> "Profile":
        """``ρᵢ = ratioⁱ⁻¹`` — each computer ``1/ratio`` times faster.

        The profiles arising in the Figure 3/4 experiment (powers of 1/2)
        have this shape.
        """
        if n < 1:
            raise InvalidProfileError(f"cluster size must be >= 1, got {n}")
        if not (0.0 < ratio <= 1.0):
            raise InvalidProfileError(f"ratio must lie in (0, 1], got {ratio!r}")
        return cls(ratio ** np.arange(n, dtype=float))

    @classmethod
    def two_point(cls, n_slow: int, n_fast: int, rho_slow: float = 1.0,
                  rho_fast: float = 0.1) -> "Profile":
        """A bimodal cluster: ``n_slow`` computers at ``rho_slow`` plus
        ``n_fast`` at ``rho_fast``.

        Useful for "one superfast computer and the rest average" questions
        from the paper's abstract.
        """
        if n_slow < 0 or n_fast < 0 or n_slow + n_fast < 1:
            raise InvalidProfileError(
                f"need at least one computer, got n_slow={n_slow}, n_fast={n_fast}")
        if rho_fast > rho_slow:
            raise InvalidProfileError(
                f"rho_fast ({rho_fast!r}) must not exceed rho_slow ({rho_slow!r})")
        return cls(np.concatenate([np.full(n_slow, float(rho_slow)),
                                   np.full(n_fast, float(rho_fast))]))

    @classmethod
    def from_speeds(cls, speeds: Iterable[float]) -> "Profile":
        """Build a profile from *speeds* (work units per time unit).

        ρ is the reciprocal of speed, so the fastest machine gets the
        smallest ρ.  The result is power-ordered and normalised so the
        slowest machine has ρ = 1.
        """
        s = validate_positive_vector(speeds, name="speeds")
        return cls(1.0 / s).power_ordered().normalized()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def rho(self) -> np.ndarray:
        """The ρ-vector as a read-only ``float64`` array."""
        return self._rho

    @property
    def n(self) -> int:
        """Number of computers in the cluster."""
        return int(self._rho.size)

    @property
    def slowest_rho(self) -> float:
        """Largest ρ-value (the slowest computer's rate)."""
        return float(self._rho.max())

    @property
    def fastest_rho(self) -> float:
        """Smallest ρ-value (the fastest computer's rate)."""
        return float(self._rho.min())

    @property
    def is_power_ordered(self) -> bool:
        """Whether ρ₁ ≥ ρ₂ ≥ … ≥ ρₙ holds."""
        return is_nonincreasing(self._rho)

    @property
    def is_normalized(self) -> bool:
        """Whether the slowest computer has ρ = 1."""
        return self.slowest_rho == 1.0

    @property
    def is_homogeneous(self) -> bool:
        """Whether all computers share the same ρ-value."""
        return bool(np.all(self._rho == self._rho[0]))

    # ------------------------------------------------------------------
    # Statistics (paper §4.2)
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Arithmetic mean of the ρ-values: ``F₁⁽ⁿ⁾/n``."""
        return float(self._rho.mean())

    @property
    def variance(self) -> float:
        """Population variance of the ρ-values — eq. (7) of the paper."""
        return float(self._rho.var())

    @property
    def std(self) -> float:
        """Population standard deviation of the ρ-values."""
        return float(self._rho.std())

    @property
    def geometric_mean(self) -> float:
        """Geometric mean of the ρ-values: ``(Fₙ⁽ⁿ⁾)^{1/n}``."""
        return float(np.exp(np.mean(np.log(self._rho))))

    @property
    def total_speed(self) -> float:
        """Aggregate compute speed Σ 1/ρᵢ (work units per time unit).

        This is the communication-free upper envelope that ``X(P)``
        approaches as τ, π → 0.
        """
        return float(np.sum(1.0 / self._rho))

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def power_ordered(self) -> "Profile":
        """Return the profile sorted nonincreasing (C₁ slowest … Cₙ fastest)."""
        if self.is_power_ordered:
            return self
        return Profile(np.sort(self._rho)[::-1])

    def normalized(self) -> "Profile":
        """Return the profile rescaled so the slowest computer has ρ = 1.

        Power indexing only identifies computers, so this rescaling is a
        pure change of time unit and does not alter relative comparisons.
        """
        if self.is_normalized:
            return self
        return Profile(self._rho / self.slowest_rho)

    def with_rho_at(self, index: int, rho: float) -> "Profile":
        """Return a copy with the ρ-value at ``index`` replaced by ``rho``."""
        if not (0 <= index < self.n):
            raise InvalidProfileError(f"index {index} out of range for n={self.n}")
        if rho <= 0 or not np.isfinite(rho):
            raise InvalidProfileError(f"replacement rho must be positive and finite, got {rho!r}")
        new = self._rho.copy()
        new[index] = rho
        return Profile(new)

    def without(self, index: int) -> "Profile":
        """Return the (n−1)-computer profile with computer ``index`` removed."""
        if self.n == 1:
            raise InvalidProfileError("cannot remove the only computer")
        if not (0 <= index < self.n):
            raise InvalidProfileError(f"index {index} out of range for n={self.n}")
        return Profile(np.delete(self._rho, index))

    def extended(self, rho: float) -> "Profile":
        """Return the (n+1)-computer profile with a new computer appended."""
        if rho <= 0 or not np.isfinite(rho):
            raise InvalidProfileError(f"new rho must be positive and finite, got {rho!r}")
        return Profile(np.append(self._rho, float(rho)))

    def permuted(self, order: Sequence[int]) -> "Profile":
        """Return the profile reordered by ``order`` (a permutation of range(n)).

        By Theorem 1(2) all orderings are equally productive, so this only
        matters for presentation and for exercising order-invariance in
        tests.
        """
        idx = np.asarray(order, dtype=int)
        if idx.shape != (self.n,) or sorted(idx.tolist()) != list(range(self.n)):
            raise InvalidProfileError(f"order must be a permutation of range({self.n})")
        return Profile(self._rho[idx])

    # ------------------------------------------------------------------
    # Comparisons
    # ------------------------------------------------------------------
    def minorizes(self, other: "Profile") -> bool:
        """Prop. 2's sufficient dominance condition, applied entrywise.

        ``self`` minorizes ``other`` when, comparing the power-ordered
        vectors entry by entry, every ρ of ``self`` is ≤ the corresponding
        ρ of ``other`` and at least one is strictly smaller.  Minorization
        implies ``self`` outperforms ``other`` (it is sufficient but — as
        the ⟨0.99, 0.02⟩ vs ⟨0.5, 0.5⟩ example shows — not necessary).
        """
        if not isinstance(other, Profile):
            raise TypeError(f"expected Profile, got {type(other).__name__}")
        if self.n != other.n:
            raise InvalidProfileError(
                f"minorization compares equal-size clusters (got {self.n} vs {other.n})")
        a = np.sort(self._rho)[::-1]
        b = np.sort(other._rho)[::-1]
        return bool(np.all(a <= b) and np.any(a < b))

    # ------------------------------------------------------------------
    # Exact arithmetic
    # ------------------------------------------------------------------
    def exact_rho(self) -> tuple[Fraction, ...]:
        """The ρ-values as exact :class:`fractions.Fraction` objects."""
        return tuple(Fraction(float(r)) for r in self._rho)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[float]:
        return iter(self._rho.tolist())

    def __getitem__(self, index: int) -> float:
        return float(self._rho[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Profile):
            return NotImplemented
        return self.n == other.n and bool(np.all(self._rho == other._rho))

    def __hash__(self) -> int:
        return hash(self._rho.tobytes())

    def __repr__(self) -> str:
        inner = ", ".join(f"{r:g}" for r in self._rho[:8])
        if self.n > 8:
            inner += f", … ({self.n} computers)"
        return f"Profile([{inner}])"
