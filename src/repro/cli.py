"""Command-line interface: ``python -m repro`` / ``repro-hetero``.

Subcommands
-----------
``list``
    Show every registered experiment (``--json`` for machine-readable).
``run <experiment-id> [...]``
    Run one experiment (or ``all``) and print its report.
``hecr --profile 1,0.5,0.25``
    Quick HECR/X computation for an ad-hoc profile.
``serve``
    Start the JSON-over-HTTP serving layer (see ``docs/SERVICE.md``).
``stream``
    Run the streaming digital twin over a JSONL event trace: event-time
    windows, per-window re-evaluation, online (τ, π, δ, ρ) calibration
    (see ``docs/STREAM.md``).
``obs``
    Inspect the persistent run-history store: ``summary``, ``runs``,
    ``tail``, ``top``, ``compare`` (drift watchdog), ``export``
    (Perfetto), ``prune`` (see ``docs/OBSERVABILITY.md``).

Examples
--------
::

    repro-hetero list
    repro-hetero run table3
    repro-hetero run variance-trials --trials 200 --seed 7
    repro-hetero hecr --profile 1,0.5,0.333,0.25
    repro-hetero serve --port 8023 --batch-window 2.0
    repro-hetero stream --source trace.jsonl --window 10 --what-if 1,1,0.5
    repro-hetero obs tail
    repro-hetero obs compare <baseline-run> <candidate-run>
    repro-hetero obs export --perfetto trace.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.hecr import hecr
from repro.core.measure import work_rate, x_measure
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import FaultInjectionError, RecoveryError, SimulationError
from repro.experiments import list_experiments

__all__ = ["main", "build_parser"]

#: Exception families the CLI maps to exit code 3 (fault/simulation),
#: both when raised directly and when reported back by a batch worker
#: as an ``"ExcName: message"`` item error.
_FAULT_ERROR_NAMES = ("SimulationError", "FaultInjectionError",
                      "FaultSpecError", "RecoveryError")


def _add_batch_flags(parser: argparse.ArgumentParser) -> None:
    """The batch-engine knobs shared by ``run`` and ``report``."""
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for batch execution "
                             "(default: 1 = in-process sequential)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always recompute; skip the on-disk result cache")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or the platform cache home)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="declare a batch worker task hung past this "
                             "many wall-clock seconds (pool respawned, task "
                             "retried; default: no timeout)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="re-executions granted to a failed batch task "
                             "(error, timeout, or pool crash; default: 1)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-hetero",
        description="Reproduction of Rosenberg & Chiang, 'Toward Understanding "
                    "Heterogeneity in Computing' (IPDPS 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the registered experiments")
    list_cmd.add_argument("--json", action="store_true",
                          help="emit the registry as a JSON array of "
                               "{id, description, shardable} objects")

    run = sub.add_parser("run", help="run an experiment and print its report")
    run.add_argument("experiment", help="experiment id, or 'all'")
    run.add_argument("--trials", type=int, default=None,
                     help="trials per size for sampling experiments")
    run.add_argument("--seed", type=int, default=None,
                     help="RNG seed for sampling experiments")
    run.add_argument("--format", choices=("text", "json", "csv"),
                     default="text", help="output format (default: text)")
    run.add_argument("--json", action="store_true",
                     help="shorthand for --format json; with 'all', emits "
                          "one JSON array of every result")
    run.add_argument("--output", default=None, metavar="PATH",
                     help="write the report to a file instead of stdout; "
                          "with 'all' in csv mode, one file per experiment "
                          "(id suffixed)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="stream a JSONL span/event trace of the run to PATH")
    run.add_argument("--metrics", default=None, metavar="PATH",
                     help="write a Prometheus-format metrics dump to PATH")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="fault scenario for fault-aware experiments, e.g. "
                          "'outage:1@10+5,slow:0@2+20x3,loss:0.05,seed:7' "
                          "(see docs/FAULTS.md for the grammar)")
    run.add_argument("--scheme", default=None, metavar="SPEC",
                     help="redundancy scheme for coded experiments: "
                          "'replication:<r>' or 'mds:<k>/<n>' (see "
                          "docs/FAULTS.md § Proactive redundancy)")
    run.add_argument("--engine", choices=("auto", "events", "analytic"),
                     default=None,
                     help="simulation engine: 'auto' takes the analytic "
                          "fast path for fault-free unobserved runs, "
                          "'events'/'analytic' force one engine for every "
                          "simulation (default: auto, or $REPRO_SIM_ENGINE; "
                          "see docs/PERFORMANCE.md)")
    run.add_argument("--no-store", action="store_true",
                     help="do not record this run in the run-history store "
                          "($REPRO_OBS_DIR or the platform state home)")
    _add_batch_flags(run)

    report = sub.add_parser(
        "report", help="run every experiment and write one markdown report")
    report.add_argument("--output", default="reproduction_report.md",
                        metavar="PATH", help="report destination")
    report.add_argument("--trials", type=int, default=None,
                        help="trials per size for sampling experiments")
    _add_batch_flags(report)

    hecr_cmd = sub.add_parser("hecr", help="compute HECR/X for a profile")
    hecr_cmd.add_argument("--profile", required=True,
                          help="comma-separated rho values, e.g. 1,0.5,0.25")
    hecr_cmd.add_argument("--tau", type=float, default=PAPER_TABLE1.tau)
    hecr_cmd.add_argument("--pi", type=float, default=PAPER_TABLE1.pi)
    hecr_cmd.add_argument("--delta", type=float, default=PAPER_TABLE1.delta)

    serve = sub.add_parser(
        "serve", help="start the JSON-over-HTTP serving layer")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8023,
                       help="bind port; 0 asks the OS for an ephemeral port "
                            "(default: 8023)")
    serve.add_argument("--batch-window", type=float, default=2.0,
                       metavar="MS",
                       help="micro-batching window in milliseconds; 0 "
                            "disables coalescing (default: 2.0)")
    serve.add_argument("--max-batch", type=int, default=64, metavar="N",
                       help="max evaluation requests solved in one "
                            "coalesced batch (default: 64)")
    serve.add_argument("--max-inflight", type=int, default=64, metavar="N",
                       help="admitted-request ceiling; excess is shed with "
                            "503 + Retry-After (default: 64)")
    serve.add_argument("--rate", type=float, default=0.0, metavar="RPS",
                       help="token-bucket admission rate in requests/second; "
                            "0 disables rate limiting (default: 0)")
    serve.add_argument("--burst", type=float, default=64.0, metavar="N",
                       help="token-bucket capacity (default: 64)")
    serve.add_argument("--deadline", type=float, default=0.0,
                       metavar="SECONDS",
                       help="default per-request deadline; 0 = none; a "
                            "request may override via X-Repro-Deadline-Ms "
                            "(default: 0)")
    serve.add_argument("--cache-ttl", type=float, default=60.0,
                       metavar="SECONDS",
                       help="response-cache entry lifetime; 0 disables the "
                            "cache (default: 60)")
    serve.add_argument("--cache-entries", type=int, default=1024, metavar="N",
                       help="response-cache capacity (default: 1024)")
    serve.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                       help="worker processes for experiment dispatch "
                            "(default: 1)")
    serve.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk experiment result cache")
    serve.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="experiment result-cache directory (default: "
                            "$REPRO_CACHE_DIR or the platform cache home)")
    serve.add_argument("--engine", choices=("auto", "events", "analytic"),
                       default=None,
                       help="force a simulation engine for the server "
                            "process and its dispatch workers (default: "
                            "process default / $REPRO_SIM_ENGINE)")
    serve.add_argument("--log-level",
                       choices=("debug", "info", "warning", "error"),
                       default="warning",
                       help="stderr logging threshold; 'info' emits one "
                            "JSON access-log line per request "
                            "(default: warning)")
    serve.add_argument("--no-store", action="store_true",
                       help="do not persist requests/dispatches to the "
                            "run-history store")
    serve.add_argument("--store-dir", default=None, metavar="PATH",
                       help="run-history store directory (default: "
                            "$REPRO_OBS_DIR or the platform state home)")
    serve.add_argument("--slo-latency", type=float, default=0.25,
                       metavar="SECONDS",
                       help="per-route SLO latency threshold behind the "
                            "svc_slo_burn_rate gauges; 0 disables them "
                            "(default: 0.25)")
    serve.add_argument("--slo-objective", type=float, default=0.99,
                       metavar="FRACTION",
                       help="SLO success objective in (0,1); the error "
                            "budget is 1 - objective (default: 0.99)")
    serve.add_argument("--workers", type=int, default=1, metavar="N",
                       help="worker processes sharing the port via a "
                            "pre-fork supervisor (SO_REUSEPORT); --rate/"
                            "--max-inflight/--burst are cluster totals "
                            "split across workers (default: 1)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="on SIGTERM/SIGINT, seconds to finish in-flight "
                            "requests after the listener closes; new "
                            "requests during the drain answer 503 + "
                            "Retry-After (default: 5)")
    serve.add_argument("--shared-cache-dir", default=None, metavar="PATH",
                       help="cross-worker shared cache directory (response "
                            "cache tier + single-flight experiment dedup); "
                            "default: a per-run temporary directory when "
                            "--workers > 1, disabled otherwise")
    serve.add_argument("--no-shared-cache", action="store_true",
                       help="keep each worker's caches process-private "
                            "(disables cross-worker single-flight dedup)")
    serve.add_argument("--socket-mode",
                       choices=("auto", "reuseport", "inherit"),
                       default="auto",
                       help="how workers share the port: kernel-balanced "
                            "SO_REUSEPORT sockets or one inherited "
                            "listener (default: auto)")
    serve.add_argument("--metrics-port", type=int, default=None, metavar="N",
                       help="with --workers > 1, serve an aggregate "
                            "/metrics + /healthz for the whole fleet on "
                            "this port (0 = ephemeral; default: disabled)")

    obs = sub.add_parser(
        "obs", help="inspect the persistent run-history store")
    obs.add_argument("--store-dir", default=None, metavar="PATH",
                     help="run-history store directory (default: "
                          "$REPRO_OBS_DIR or the platform state home)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_sub.add_parser("summary", help="store-wide counts and extent")
    obs_runs = obs_sub.add_parser("runs", help="list recent stored runs")
    obs_runs.add_argument("--kind", default=None,
                          help="filter by run kind (run, experiment, request)")
    obs_runs.add_argument("--limit", type=int, default=20, metavar="N")
    obs_tail = obs_sub.add_parser(
        "tail", help="print a stored run's span records (latest by default)")
    obs_tail.add_argument("run_id", nargs="?", default=None,
                          help="run id or unambiguous prefix "
                               "(default: the most recent run)")
    obs_tail.add_argument("--follow", "-f", action="store_true",
                          help="poll for new spans/runs until interrupted")
    obs_tail.add_argument("--interval", type=float, default=0.5,
                          metavar="SECONDS",
                          help="--follow poll interval (default: 0.5)")
    obs_top = obs_sub.add_parser(
        "top", help="hottest span names of a stored run, by total time")
    obs_top.add_argument("run_id", nargs="?", default=None)
    obs_top.add_argument("--limit", type=int, default=15, metavar="N")
    obs_compare = obs_sub.add_parser(
        "compare",
        help="drift watchdog: compare two runs (or BENCH_*.json files); "
             "exits 1 when a latency-like metric regresses past the "
             "threshold")
    obs_compare.add_argument("baseline",
                             help="run id/prefix, or path to a JSON "
                                  "metrics/benchmark document")
    obs_compare.add_argument("candidate",
                             help="run id/prefix or JSON path "
                                  "(default semantics: newer run)")
    obs_compare.add_argument("--threshold", type=float, default=0.25,
                             metavar="FRACTION",
                             help="relative increase that counts as a "
                                  "regression (default: 0.25)")
    obs_compare.add_argument("--keys", default=None, metavar="REGEX",
                             help="override the metric-name filter "
                                  "(default: latency/seconds/ratio-like "
                                  "keys)")
    obs_export = obs_sub.add_parser(
        "export", help="export a stored run's spans as Perfetto trace JSON")
    obs_export.add_argument("run_id", nargs="?", default=None,
                            help="run id or prefix (default: latest run "
                                 "with spans)")
    obs_export.add_argument("--perfetto", default="trace.perfetto.json",
                            metavar="PATH",
                            help="output path (default: trace.perfetto.json)")
    obs_export.add_argument("--input", default=None, metavar="JSONL",
                            help="convert a run --trace JSONL file instead "
                                 "of reading the store")
    obs_prune = obs_sub.add_parser(
        "prune", help="apply retention to the store")
    obs_prune.add_argument("--max-runs", type=int, default=None, metavar="N",
                           help="keep at most the N most recent runs")
    obs_prune.add_argument("--max-age-days", type=float, default=None,
                           metavar="DAYS",
                           help="drop runs started more than DAYS ago")

    stream = sub.add_parser(
        "stream", help="run the streaming digital twin over an event trace")
    stream.add_argument("--source", default="-", metavar="PATH",
                        help="JSONL event source: a file path, or '-' for "
                             "stdin (default: -)")
    stream.add_argument("--window", type=float, default=10.0,
                        metavar="SPAN",
                        help="event-time window size, in the trace's time "
                             "units (default: 10)")
    stream.add_argument("--what-if", default=None, metavar="PROFILE",
                        help="shadow profile evaluated alongside the real "
                             "cluster each window, e.g. 1,1,0.5")
    stream.add_argument("--calibrate", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="fit (tau, pi, delta, rho) online from observed "
                             "completions (default: --calibrate)")
    stream.add_argument("--tau", type=float, default=PAPER_TABLE1.tau)
    stream.add_argument("--pi", type=float, default=PAPER_TABLE1.pi)
    stream.add_argument("--delta", type=float, default=PAPER_TABLE1.delta)
    stream.add_argument("--forget", type=float, default=0.35,
                        metavar="FACTOR",
                        help="calibrator retention per window in (0, 1]; "
                             "smaller forgets faster (default: 0.35)")
    stream.add_argument("--drift-threshold", type=float, default=0.1,
                        metavar="FRACTION",
                        help="relative rho deviation that counts as drift in "
                             "the summary's speeds: clauses (default: 0.1)")
    stream.add_argument("--replay", default=None, metavar="RUN_ID",
                        help="replay the recorded events of a stored stream "
                             "run (id or prefix) instead of reading --source")
    stream.add_argument("--output", default=None, metavar="PATH",
                        help="write window-record JSONL to PATH instead of "
                             "stdout")
    stream.add_argument("--no-store", action="store_true",
                        help="do not record this stream run (disables later "
                             "--replay of it)")
    stream.add_argument("--store-dir", default=None, metavar="PATH",
                        help="run-history store directory (default: "
                             "$REPRO_OBS_DIR or the platform state home)")

    compare_cmd = sub.add_parser(
        "compare", help="compare two clusters with every measure/predictor")
    compare_cmd.add_argument("--first", required=True,
                             help="first profile, e.g. 0.9,0.1")
    compare_cmd.add_argument("--second", required=True,
                             help="second profile, e.g. 0.5,0.5")
    compare_cmd.add_argument("--tau", type=float, default=PAPER_TABLE1.tau)
    compare_cmd.add_argument("--pi", type=float, default=PAPER_TABLE1.pi)
    compare_cmd.add_argument("--delta", type=float, default=PAPER_TABLE1.delta)
    return parser


#: Experiments that accept the sampling overrides.
_SAMPLING_EXPERIMENTS = ("variance-trials", "variance-threshold",
                         "moment-ablation")

#: Experiments that accept a ``--faults`` scenario.
_FAULT_EXPERIMENTS = ("failure-resilience", "coded-resilience")

#: Experiments that accept a ``--scheme`` redundancy spec.
_SCHEME_EXPERIMENTS = ("coded-resilience",)


def _experiment_kwargs(experiment_id: str, args: argparse.Namespace) -> dict:
    kwargs = {}
    if args.trials is not None and experiment_id in _SAMPLING_EXPERIMENTS:
        kwargs["trials_per_size"] = args.trials
    if args.seed is not None and experiment_id in _SAMPLING_EXPERIMENTS:
        kwargs["seed"] = args.seed
    if getattr(args, "faults", None) and experiment_id in _FAULT_EXPERIMENTS:
        kwargs["faults"] = args.faults
    if getattr(args, "scheme", None) and experiment_id in _SCHEME_EXPERIMENTS:
        kwargs["scheme"] = args.scheme
    return kwargs


def _render_result(result, fmt: str) -> str:
    from repro.experiments.export import result_to_csv, result_to_json
    if fmt == "json":
        return result_to_json(result)
    if fmt == "csv":
        return result_to_csv(result)
    return result.render() + "\n"


def _emit(text: str, fmt: str, label: str, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {label} ({fmt}) to {output}")
    else:
        print(text)


def _suffixed_path(output: str, experiment_id: str) -> str:
    """``out.csv`` -> ``out.<experiment_id>.csv`` (id before the suffix)."""
    from pathlib import Path
    path = Path(output)
    return str(path.with_name(f"{path.stem}.{experiment_id}{path.suffix}"))


def _emit_many(rendered: list[tuple[str, str]], fmt: str,
               output: str | None) -> None:
    """Emit several experiments' reports without clobbering each other.

    To stdout: print in order, as before.  To a file: text becomes one
    concatenated document; csv becomes one file per experiment with the
    id spliced into the name (concatenated CSV would repeat headers and
    parse as garbage).
    """
    if not output:
        for _, text in rendered:
            print(text)
        return
    if fmt == "csv":
        for experiment_id, text in rendered:
            _emit(text, fmt, experiment_id, _suffixed_path(output, experiment_id))
        return
    document = "\n".join(text if text.endswith("\n") else text + "\n"
                         for _, text in rendered)
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(document)
    print(f"wrote {len(rendered)} experiments ({fmt}) to {output}")


def _warn_ignored_sampling_flags(args: argparse.Namespace) -> None:
    """Satellite fix: say so instead of silently dropping ``--seed``/
    ``--trials`` for experiments that take neither."""
    if args.experiment == "all" or args.experiment in _SAMPLING_EXPERIMENTS:
        return
    for flag, value in (("--trials", args.trials), ("--seed", args.seed)):
        if value is not None:
            print(f"warning: {flag} ignored — experiment "
                  f"{args.experiment!r} is not a sampling experiment "
                  f"(sampling: {', '.join(_SAMPLING_EXPERIMENTS)})",
                  file=sys.stderr)


def _warn_ignored_faults_flag(args: argparse.Namespace) -> None:
    if not getattr(args, "faults", None):
        return
    if args.experiment == "all" or args.experiment in _FAULT_EXPERIMENTS:
        return
    print(f"warning: --faults ignored — experiment {args.experiment!r} is "
          f"not fault-aware (fault-aware: {', '.join(_FAULT_EXPERIMENTS)})",
          file=sys.stderr)


def _warn_ignored_scheme_flag(args: argparse.Namespace) -> None:
    if not getattr(args, "scheme", None):
        return
    if args.experiment == "all" or args.experiment in _SCHEME_EXPERIMENTS:
        return
    print(f"warning: --scheme ignored — experiment {args.experiment!r} "
          f"takes no redundancy scheme (coded: "
          f"{', '.join(_SCHEME_EXPERIMENTS)})", file=sys.stderr)


def _failure_exit_code(batch) -> int:
    """0 clean; 3 when every failure is in the fault/simulation family
    (so scripts can distinguish 'the scenario broke the run' from an
    ordinary experiment bug); 1 otherwise."""
    if not batch.failures:
        return 0
    if all((item.error or "").split(":", 1)[0] in _FAULT_ERROR_NAMES
           for item in batch.failures):
        return 3
    return 1


def _cmd_run(args: argparse.Namespace) -> int:
    """The ``run`` subcommand: exit 0 on success, 1 on experiment
    failure, 2 for an unknown experiment id, 3 for fault/simulation
    errors (a bad ``--faults`` spec included)."""
    from contextlib import nullcontext

    from repro.batch import ResultCache, default_cache_dir, run_batch
    from repro.io import results_to_json
    from repro.obs import (JsonlTraceWriter, Observation, Tracer,
                           default_registry, observe, write_metrics)

    fmt = "json" if args.json else args.format
    known = list_experiments()
    if args.experiment == "all":
        experiment_ids = known
    elif args.experiment in known:
        experiment_ids = [args.experiment]
    else:
        print(f"error: unknown experiment {args.experiment!r}; "
              f"known: {', '.join(known)}", file=sys.stderr)
        return 2
    _warn_ignored_sampling_flags(args)
    _warn_ignored_faults_flag(args)
    _warn_ignored_scheme_flag(args)
    if args.scheme:
        # A malformed --scheme is invalid input, not a fault-family
        # failure: report and exit 2 before any work starts.
        from repro.coded import parse_scheme
        from repro.errors import CodedSchemeError
        try:
            parse_scheme(args.scheme)
        except CodedSchemeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.engine == "analytic" and args.faults:
        print("error: --engine analytic cannot run a --faults scenario — "
              "fault timelines require the event engine; drop --engine or "
              "use --engine auto/events", file=sys.stderr)
        return 3
    if args.engine:
        import os

        from repro.simulation.runner import set_default_engine
        # Both halves matter: set_default_engine() covers in-process runs
        # (--jobs 1), the environment variable covers batch worker
        # processes, which re-read it at import.
        os.environ["REPRO_SIM_ENGINE"] = args.engine
        set_default_engine(args.engine)
    if args.faults:
        # Validate the spec before any work: a malformed clause raises
        # FaultSpecError, which main() maps to exit code 3.
        from repro.faults.spec import parse_faults
        parse_faults(args.faults)

    try:
        trace_writer = JsonlTraceWriter(args.trace) if args.trace else None
    except OSError as exc:
        print(f"error: cannot open trace file {args.trace!r}: {exc}",
              file=sys.stderr)
        return 1
    obs_ctx = None
    tracer = None
    span_buffer: list[dict] = []
    if args.trace or args.metrics:
        if trace_writer is not None:
            def sink(record: dict, _writer=trace_writer) -> None:
                _writer(record)
                span_buffer.append(record)
            tracer = Tracer(sink=sink, keep_records=False)
        obs_ctx = Observation(tracer=tracer, registry=default_registry())

    cache = None
    if args.experiment == "all" and not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    kwargs_by_id = {experiment_id: _experiment_kwargs(experiment_id, args)
                    for experiment_id in experiment_ids}

    try:
        with observe(obs_ctx) if obs_ctx is not None else nullcontext():
            batch = run_batch(experiment_ids, kwargs_by_id=kwargs_by_id,
                              jobs=args.jobs, cache=cache,
                              task_timeout=args.task_timeout,
                              retries=args.retries)
    finally:
        if trace_writer is not None:
            trace_writer.close()

    for item in batch.failures:
        print(f"error: experiment {item.experiment_id!r} failed: "
              f"{item.error}", file=sys.stderr)
    results = batch.results
    if fmt == "json" and args.experiment == "all":
        _emit(results_to_json(results), fmt, "all experiments", args.output)
    elif args.experiment == "all":
        _emit_many([(r.experiment_id, _render_result(r, fmt)) for r in results],
                   fmt, args.output)
    elif results:
        _emit(_render_result(results[0], fmt), fmt, results[0].experiment_id,
              args.output)
    if args.experiment == "all":
        cache_note = (f", {batch.cache_hits} cached" if cache is not None else "")
        print(f"ran {len(results)}/{len(experiment_ids)} experiments with "
              f"--jobs {args.jobs} in {batch.wall_seconds:.2f}s{cache_note}",
              file=sys.stderr)
    if args.metrics:
        try:
            write_metrics(default_registry(), args.metrics)
        except OSError as exc:
            print(f"error: cannot write metrics file {args.metrics!r}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    if args.trace:
        print(f"wrote {trace_writer.records_written} trace records to "
              f"{args.trace}", file=sys.stderr)
    exit_code = _failure_exit_code(batch)
    if not args.no_store:
        _store_cli_run(args, batch, experiment_ids, kwargs_by_id, tracer,
                       span_buffer, exit_code)
    return exit_code


def _store_cli_run(args, batch, experiment_ids, kwargs_by_id, tracer,
                   span_buffer, exit_code) -> None:
    """Persist one ``run`` invocation to the run-history store.

    Best-effort by design: a broken state directory must not change the
    run's output or exit code.
    """
    try:
        from repro.batch.cache import cache_key
        from repro.obs import RunStore, default_store_path, default_registry
        from repro.simulation.runner import default_engine

        store = RunStore(default_store_path())
        run_id = store.record_run(
            kind="run", label=args.experiment,
            trace_id=tracer.trace_id if tracer is not None else None,
            cache_key=(cache_key(experiment_ids[0],
                                 kwargs_by_id[experiment_ids[0]])
                       if len(experiment_ids) == 1 else None),
            engine=args.engine or default_engine(),
            status="ok" if exit_code == 0 else "failed",
            wall_seconds=batch.wall_seconds,
            metrics=default_registry().snapshot(),
            extra={"jobs": args.jobs, "cache_hits": batch.cache_hits,
                   "cache_misses": batch.cache_misses,
                   "experiments": list(experiment_ids),
                   "failures": [item.experiment_id
                                for item in batch.failures],
                   "faults": getattr(args, "faults", None),
                   "exit_code": exit_code},
            spans=span_buffer or None)
        store.close()
        if run_id is not None:
            print(f"recorded run {run_id[:12]} in the run-history store "
                  f"(inspect: repro-hetero obs tail {run_id[:12]})",
                  file=sys.stderr)
    except Exception as exc:  # noqa: BLE001 - telemetry is best-effort
        print(f"warning: could not record run in the run-history store: "
              f"{exc}", file=sys.stderr)


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: exit 0 on clean shutdown, 1 when the
    bind fails, 3 for engine/simulation errors (e.g. a bad --engine or
    $REPRO_SIM_ENGINE surfacing at boot), 4 when a worker's respawn
    budget is exhausted under ``--workers``."""
    import logging

    from repro.obs import default_registry
    from repro.service import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host, port=args.port,
        batch_window=args.batch_window / 1000.0,  # CLI speaks milliseconds
        max_batch=args.max_batch, max_inflight=args.max_inflight,
        rate=args.rate, burst=args.burst, deadline=args.deadline,
        cache_entries=args.cache_entries, cache_ttl=args.cache_ttl,
        jobs=args.jobs, no_result_cache=args.no_cache,
        result_cache_dir=args.cache_dir, engine=args.engine,
        no_store=args.no_store, store_dir=args.store_dir,
        slo_latency=args.slo_latency, slo_objective=args.slo_objective,
        log_level=args.log_level,
        workers=args.workers, drain_timeout=args.drain_timeout,
        shared_cache_dir=args.shared_cache_dir,
        no_shared_cache=args.no_shared_cache,
        socket_mode=args.socket_mode, metrics_port=args.metrics_port)

    # Structured request logging: the access logger emits one bare JSON
    # line per request at INFO; lifecycle/warning messages share the
    # same stderr stream.  Workers inherit this via fork.
    svc_logger = logging.getLogger("repro.service")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    svc_logger.addHandler(handler)
    svc_logger.setLevel(getattr(logging, args.log_level.upper()))

    if config.workers > 1:
        from repro.service.supervisor import Supervisor
        try:
            return Supervisor(config).run()
        except OSError as exc:
            print(f"error: cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 1

    def announce(service) -> None:
        print(f"repro-hetero serving on http://{service.host}:{service.port} "
              f"(batch window {args.batch_window:g} ms, max in-flight "
              f"{args.max_inflight})", file=sys.stderr)

    try:
        run_service(config, registry=default_registry(), ready=announce)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# the stream subcommand: the streaming digital twin (docs/STREAM.md)
# ---------------------------------------------------------------------------


def _stream_store(args):
    """Open the run-history store for ``stream``, best-effort.

    Returns None (with a warning) when the state directory is broken —
    telemetry must never take the stream down.  ``--replay`` needs the
    store to *read*, so that path raises instead.
    """
    from pathlib import Path

    from repro.obs import RunStore, default_store_path

    path = (Path(args.store_dir) / "runs.sqlite3" if args.store_dir
            else default_store_path())
    try:
        return RunStore(path)
    except Exception as exc:  # noqa: BLE001 - telemetry is best-effort
        if args.replay:
            raise
        print(f"warning: run-history store unavailable ({exc}); "
              "stream run will not be recorded", file=sys.stderr)
        return None


def _cmd_stream(args: argparse.Namespace) -> int:
    """The ``stream`` subcommand: exit 0 on success, 1 on I/O failure,
    2 for malformed events (line + char offset on stderr), bad
    profiles, or an unknown ``--replay`` run."""
    from contextlib import ExitStack

    from repro.errors import StreamError, StreamEventError
    from repro.obs import default_registry
    from repro.stream import (StreamProcessor, file_source, record_to_line,
                              stdin_source, store_source)

    params = ModelParams(tau=args.tau, pi=args.pi, delta=args.delta)
    what_if = None
    if args.what_if:
        try:
            what_if = [float(part) for part in args.what_if.split(",")
                       if part.strip()]
        except ValueError:
            print(f"error: could not parse what-if profile "
                  f"{args.what_if!r}", file=sys.stderr)
            return 2

    store = None
    if not args.no_store or args.replay:
        try:
            store = _stream_store(args)
        except Exception as exc:  # noqa: BLE001 - surfaced as bad input
            print(f"error: cannot open run-history store for --replay: "
                  f"{exc}", file=sys.stderr)
            return 2

    with ExitStack() as stack:
        if store is not None:
            stack.callback(store.close)
        try:
            if args.replay:
                events = store_source(store, args.replay)
                label = f"replay:{args.replay[:12]}"
            elif args.source == "-":
                events = stdin_source(sys.stdin)
                label = "stdin"
            else:
                events = file_source(args.source)
                label = args.source
        except StreamError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: cannot open event source {args.source!r}: {exc}",
                  file=sys.stderr)
            return 1

        try:
            processor = StreamProcessor(
                args.window, params=params, calibrate=args.calibrate,
                what_if=what_if, forget=args.forget,
                drift_threshold=args.drift_threshold,
                registry=default_registry(),
                store=None if args.no_store else store, label=label)
        except StreamError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

        if args.output:
            try:
                out = stack.enter_context(
                    open(args.output, "w", encoding="utf-8"))
            except OSError as exc:
                print(f"error: cannot open output file {args.output!r}: "
                      f"{exc}", file=sys.stderr)
                return 1
        else:
            out = sys.stdout

        try:
            for record in processor.process(events):
                out.write(record_to_line(record) + "\n")
                out.flush()
            for record in processor.finish():
                out.write(record_to_line(record) + "\n")
                out.flush()
        except StreamEventError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: reading event source failed: {exc}",
                  file=sys.stderr)
            return 1

        windows = processor.windows
        print(f"processed {windows.events_total} events into "
              f"{windows.windows_closed} windows "
              f"({windows.late_total} late)", file=sys.stderr)
        if processor.run_id is not None:
            print(f"recorded stream run {processor.run_id[:12]} "
                  f"(replay: repro-hetero stream --replay "
                  f"{processor.run_id[:12]})", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# the obs subcommand: run-history inspection + the drift watchdog
# ---------------------------------------------------------------------------

#: Metric-name fragments ``obs compare`` treats as "regressions when they
#: grow": wall clocks, latencies, per-op costs and overhead ratios.
_DRIFT_KEY_PATTERN = (r"(seconds|latency|_ms\b|_ns\b|duration|ratio"
                      r"|overhead|wall|p50|p95|p99|mean_|_mean)")


def _flatten_numeric(doc, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a nested JSON document as ``dotted.path: value``."""
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            out.update(_flatten_numeric(value, f"{prefix}{key}."))
    elif isinstance(doc, (list, tuple)):
        for index, value in enumerate(doc):
            out.update(_flatten_numeric(value, f"{prefix}{index}."))
    elif isinstance(doc, bool):
        pass
    elif isinstance(doc, (int, float)) and doc == doc \
            and abs(doc) != float("inf"):
        out[prefix[:-1]] = float(doc)
    return out


def _load_compare_side(store, ref: str) -> tuple[str, dict[str, float]]:
    """Resolve one ``obs compare`` operand to ``(label, flat metrics)``.

    A path to a readable JSON file wins (committed ``BENCH_*.json``
    baselines); otherwise the ref is treated as a stored run id/prefix
    whose metrics snapshot (plus wall seconds) is compared.
    """
    import json
    import os

    if os.path.exists(ref):
        with open(ref, "r", encoding="utf-8") as fh:
            return ref, _flatten_numeric(json.load(fh))
    run = store.get_run(ref) if store is not None else None
    if run is None:
        raise FileNotFoundError(
            f"{ref!r} is neither a JSON file nor a stored run id/prefix")
    doc = dict(run.get("metrics") or {})
    if run.get("wall_seconds") is not None:
        doc["wall_seconds"] = run["wall_seconds"]
    return f"run {run['run_id'][:12]}", _flatten_numeric(doc)


def _cmd_obs_compare(store, args) -> int:
    """The drift watchdog: non-zero exit on a past-threshold regression."""
    import re

    try:
        base_label, base = _load_compare_side(store, args.baseline)
        cand_label, cand = _load_compare_side(store, args.candidate)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pattern = re.compile(args.keys or _DRIFT_KEY_PATTERN)
    # Histogram bucket/count series are cardinality, not cost — only the
    # _sum (and plain scalar) keys are meaningful drift signals.
    noise = re.compile(r"_bucket\{|_count(\{|$)")
    shared = sorted(k for k in base.keys() & cand.keys()
                    if pattern.search(k) and not noise.search(k))
    if not shared:
        print("error: no comparable latency-like metrics shared by "
              f"{base_label} and {cand_label}", file=sys.stderr)
        return 2
    regressions = []
    print(f"comparing {cand_label} against {base_label} "
          f"(threshold +{args.threshold:.0%})")
    for key in shared:
        b, c = base[key], cand[key]
        if b <= 0:
            continue
        change = (c - b) / b
        marker = ""
        if change > args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((key, change))
        print(f"  {key:<56s} {b:>12.6g} -> {c:>12.6g}  "
              f"{change:+7.1%}{marker}")
    if regressions:
        worst = max(regressions, key=lambda kv: kv[1])
        print(f"DRIFT: {len(regressions)} metric(s) regressed past "
              f"+{args.threshold:.0%} (worst: {worst[0]} {worst[1]:+.1%})",
              file=sys.stderr)
        return 1
    print(f"ok: no metric regressed past +{args.threshold:.0%} "
          f"across {len(shared)} compared keys")
    return 0


def _resolve_obs_run(store, run_id):
    """Latest run when no id given; exact/prefix match otherwise."""
    if run_id is None:
        return store.latest()
    return store.get_run(run_id)


def _stream_window_suffix(attrs: dict) -> str:
    """Per-window digest appended to ``stream:window`` span rows."""
    parts = [f"w{attrs.get('window')}",
             f"workers={attrs.get('workers')}",
             f"events={attrs.get('events')}"]
    if attrs.get("late"):
        parts.append(f"late={attrs['late']}")
    if attrs.get("work_rate") is not None:
        parts.append(f"rate={attrs['work_rate']:.4g}")
    calibration = attrs.get("calibration") or {}
    if calibration.get("mape") is not None:
        parts.append(f"mape={100.0 * calibration['mape']:.2f}%")
    return "  [" + " ".join(parts) + "]"


def _print_span_rows(spans, *, offset: int = 0) -> int:
    for record in spans[offset:]:
        kind = record.get("type", "span")
        dur = record.get("dur")
        dur_text = f"{dur * 1000:9.3f}ms" if dur is not None else " " * 11
        indent = "  " * int(record.get("depth") or 0)
        attrs = record.get("attrs") or {}
        pid = attrs.get("worker_pid")
        extra = f" [pid {pid}]" if pid else ""
        if record.get("name") == "stream:window" and attrs:
            extra += _stream_window_suffix(attrs)
        print(f"  {record.get('ts', 0.0):10.6f}s {dur_text}  "
              f"{indent}{record.get('name', '?')} ({kind}){extra}")
    return len(spans)


def _print_stream_series(run: dict) -> None:
    """Show a stream run's ``stream_*`` metric series under ``obs tail``."""
    metrics = run.get("metrics") or {}
    series = {}
    for name in sorted(metrics):
        if name.startswith("stream_"):
            series.update(metrics[name].get("series") or {})
    if not series:
        return
    print("  stream series:")
    for key in sorted(series):
        print(f"    {key:<52s} {series[key]:.6g}")


def _cmd_obs(args: argparse.Namespace) -> int:
    """Dispatch ``repro-hetero obs <subcommand>``."""
    from pathlib import Path

    from repro.obs import RunStore, default_store_path

    path = (Path(args.store_dir) / "runs.sqlite3" if args.store_dir
            else default_store_path())
    if args.obs_command != "export" or not getattr(args, "input", None):
        store = RunStore(path)
    else:
        store = None

    try:
        if args.obs_command == "summary":
            summary = store.summary()
            print(f"run-history store: {path}")
            for key, value in summary.items():
                print(f"  {key:<24s} {value}")
            return 0

        if args.obs_command == "runs":
            rows = store.runs(kind=args.kind, limit=args.limit)
            if not rows:
                print("(no stored runs)")
                return 0
            print(f"{'run id':<14s} {'kind':<11s} {'label':<26s} "
                  f"{'status':<8s} {'wall':>9s}  started")
            for row in rows:
                wall = (f"{row['wall_seconds']:.3f}s"
                        if row.get("wall_seconds") is not None else "-")
                print(f"{row['run_id'][:12]:<14s} {row['kind']:<11s} "
                      f"{(row['label'] or '-')[:26]:<26s} "
                      f"{(row['status'] or '-'):<8s} {wall:>9s}  "
                      f"{row['started_iso']}")
            return 0

        if args.obs_command == "tail":
            run = _resolve_obs_run(store, args.run_id)
            if run is None:
                print("error: no matching stored run", file=sys.stderr)
                return 2
            print(f"run {run['run_id'][:12]} ({run['kind']}: "
                  f"{run['label'] or '-'}, status {run['status']})")
            if run.get("kind") == "stream":
                _print_stream_series(run)
            seen = _print_span_rows(store.spans(run["run_id"]))
            if not seen:
                print("  (no span records stored; re-run with --trace to "
                      "capture spans)")
            if not args.follow:
                return 0
            import time as _time
            try:
                while True:
                    _time.sleep(max(0.05, args.interval))
                    if args.run_id is None:
                        newest = store.latest()
                        if newest is not None \
                                and newest["run_id"] != run["run_id"]:
                            run = newest
                            seen = 0
                            print(f"run {run['run_id'][:12]} ({run['kind']}: "
                                  f"{run['label'] or '-'}, status "
                                  f"{run['status']})")
                    seen = _print_span_rows(store.spans(run["run_id"]),
                                            offset=seen)
            except KeyboardInterrupt:
                return 0

        if args.obs_command == "top":
            run = _resolve_obs_run(store, args.run_id)
            if run is None:
                print("error: no matching stored run", file=sys.stderr)
                return 2
            totals: dict[str, list[float]] = {}
            for record in store.spans(run["run_id"]):
                if record.get("type") != "span":
                    continue
                cell = totals.setdefault(record["name"], [0, 0.0, 0.0])
                dur = float(record.get("dur") or 0.0)
                cell[0] += 1
                cell[1] += dur
                cell[2] = max(cell[2], dur)
            if not totals:
                print("(no span records stored for this run)")
                return 0
            print(f"hot spans of run {run['run_id'][:12]}:")
            print(f"  {'span':<40s} {'count':>6s} {'total':>11s} "
                  f"{'mean':>11s} {'max':>11s}")
            ranked = sorted(totals.items(), key=lambda kv: kv[1][1],
                            reverse=True)
            for name, (count, total, peak) in ranked[:args.limit]:
                print(f"  {name[:40]:<40s} {count:>6d} {total*1000:>9.3f}ms "
                      f"{total/count*1000:>9.3f}ms {peak*1000:>9.3f}ms")
            return 0

        if args.obs_command == "compare":
            return _cmd_obs_compare(store, args)

        if args.obs_command == "export":
            from repro.obs import read_jsonl, write_perfetto
            if args.input:
                try:
                    records = read_jsonl(args.input)
                except (OSError, ValueError) as exc:
                    print(f"error: cannot read {args.input!r}: {exc}",
                          file=sys.stderr)
                    return 2
            else:
                run = _resolve_obs_run(store, args.run_id)
                if run is None:
                    print("error: no matching stored run", file=sys.stderr)
                    return 2
                records = store.spans(run["run_id"])
                if not records:
                    print(f"error: run {run['run_id'][:12]} has no stored "
                          "span records (re-run with --trace)",
                          file=sys.stderr)
                    return 2
            try:
                write_perfetto(records, args.perfetto)
            except OSError as exc:
                print(f"error: cannot write {args.perfetto!r}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"wrote {len(records)} trace events to {args.perfetto} "
                  f"(open in ui.perfetto.dev)")
            return 0

        if args.obs_command == "prune":
            dropped = store.prune(max_runs=args.max_runs,
                                  max_age_days=args.max_age_days)
            print(f"pruned {dropped} run(s)")
            return 0
    finally:
        if store is not None:
            store.close()
    return 2  # pragma: no cover - argparse enforces the choices


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success; 1 experiment failure (or a ``serve`` bind
    failure); 2 unknown experiment or unparseable input; 3
    fault/simulation errors (malformed ``--faults`` specs,
    :class:`~repro.errors.SimulationError` and the fault/recovery error
    family) — reported as one stderr line, not a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(parser, args)
    except (SimulationError, FaultInjectionError, RecoveryError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3


def _dispatch(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> int:
    if args.command == "list":
        if args.json:
            import json

            from repro.experiments.base import experiment_index
            print(json.dumps(experiment_index(), indent=2))
        else:
            for experiment_id in list_experiments():
                print(experiment_id)
        return 0

    if args.command == "run":
        return _cmd_run(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "obs":
        return _cmd_obs(args)

    if args.command == "stream":
        return _cmd_stream(args)

    if args.command == "report":
        from repro.batch import ResultCache, default_cache_dir, run_batch
        experiment_ids = list_experiments()
        kwargs_by_id = {}
        for experiment_id in experiment_ids:
            kwargs = {}
            if args.trials is not None and experiment_id in _SAMPLING_EXPERIMENTS:
                kwargs["trials_per_size"] = args.trials
            kwargs_by_id[experiment_id] = kwargs
        cache = (None if args.no_cache
                 else ResultCache(args.cache_dir or default_cache_dir()))
        batch = run_batch(experiment_ids, kwargs_by_id=kwargs_by_id,
                          jobs=args.jobs, cache=cache,
                          task_timeout=args.task_timeout,
                          retries=args.retries)
        for item in batch.failures:
            print(f"error: experiment {item.experiment_id!r} failed: "
                  f"{item.error}", file=sys.stderr)
        lines = ["# Reproduction report",
                 "",
                 "Generated by `repro-hetero report`: every registered "
                 "experiment, rendered.", ""]
        for result in batch.results:
            lines += [f"## {result.experiment_id}", "", "```",
                      result.render(), "```", ""]
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines))
        print(f"wrote {len(batch.results)} experiments to {args.output}")
        return 1 if batch.failures else 0

    if args.command == "hecr":
        try:
            rho = [float(part) for part in args.profile.split(",") if part.strip()]
        except ValueError:
            print(f"error: could not parse profile {args.profile!r}", file=sys.stderr)
            return 2
        profile = Profile(rho)
        params = ModelParams(tau=args.tau, pi=args.pi, delta=args.delta)
        print(f"profile: {profile!r}")
        print(f"X(P)      = {x_measure(profile, params):.6g}")
        print(f"work rate = {work_rate(profile, params):.6g} work units/time unit")
        print(f"HECR      = {hecr(profile, params):.6g}")
        return 0

    if args.command == "compare":
        from repro.core.compare import compare_clusters
        from repro.experiments.tables import render_table
        try:
            first = Profile([float(x) for x in args.first.split(",") if x.strip()])
            second = Profile([float(x) for x in args.second.split(",") if x.strip()])
        except ValueError:
            print("error: could not parse profiles", file=sys.stderr)
            return 2
        params = ModelParams(tau=args.tau, pi=args.pi, delta=args.delta)
        comparison = compare_clusters(first, second, params)
        print(render_table(
            ("quantity", "first", "second"),
            [("profile", str(list(first)), str(list(second))),
             ("X", round(comparison.x1, 6), round(comparison.x2, 6)),
             ("HECR", round(comparison.hecr1, 6), round(comparison.hecr2, 6)),
             ("work ratio first/second",
              round(comparison.work_ratio_1_over_2, 6), "")],
            title="cluster comparison"))
        print()
        print(render_table(("lens", "call", "agrees with truth"),
                           comparison.verdict_rows()))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
