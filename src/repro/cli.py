"""Command-line interface: ``python -m repro`` / ``repro-hetero``.

Subcommands
-----------
``list``
    Show every registered experiment (``--json`` for machine-readable).
``run <experiment-id> [...]``
    Run one experiment (or ``all``) and print its report.
``hecr --profile 1,0.5,0.25``
    Quick HECR/X computation for an ad-hoc profile.
``serve``
    Start the JSON-over-HTTP serving layer (see ``docs/SERVICE.md``).

Examples
--------
::

    repro-hetero list
    repro-hetero run table3
    repro-hetero run variance-trials --trials 200 --seed 7
    repro-hetero hecr --profile 1,0.5,0.333,0.25
    repro-hetero serve --port 8023 --batch-window 2.0
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.hecr import hecr
from repro.core.measure import work_rate, x_measure
from repro.core.params import PAPER_TABLE1, ModelParams
from repro.core.profile import Profile
from repro.errors import FaultInjectionError, RecoveryError, SimulationError
from repro.experiments import list_experiments

__all__ = ["main", "build_parser"]

#: Exception families the CLI maps to exit code 3 (fault/simulation),
#: both when raised directly and when reported back by a batch worker
#: as an ``"ExcName: message"`` item error.
_FAULT_ERROR_NAMES = ("SimulationError", "FaultInjectionError",
                      "FaultSpecError", "RecoveryError")


def _add_batch_flags(parser: argparse.ArgumentParser) -> None:
    """The batch-engine knobs shared by ``run`` and ``report``."""
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for batch execution "
                             "(default: 1 = in-process sequential)")
    parser.add_argument("--no-cache", action="store_true",
                        help="always recompute; skip the on-disk result cache")
    parser.add_argument("--cache-dir", default=None, metavar="PATH",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or the platform cache home)")
    parser.add_argument("--task-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="declare a batch worker task hung past this "
                             "many wall-clock seconds (pool respawned, task "
                             "retried; default: no timeout)")
    parser.add_argument("--retries", type=int, default=1, metavar="N",
                        help="re-executions granted to a failed batch task "
                             "(error, timeout, or pool crash; default: 1)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-hetero",
        description="Reproduction of Rosenberg & Chiang, 'Toward Understanding "
                    "Heterogeneity in Computing' (IPDPS 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="list the registered experiments")
    list_cmd.add_argument("--json", action="store_true",
                          help="emit the registry as a JSON array of "
                               "{id, description, shardable} objects")

    run = sub.add_parser("run", help="run an experiment and print its report")
    run.add_argument("experiment", help="experiment id, or 'all'")
    run.add_argument("--trials", type=int, default=None,
                     help="trials per size for sampling experiments")
    run.add_argument("--seed", type=int, default=None,
                     help="RNG seed for sampling experiments")
    run.add_argument("--format", choices=("text", "json", "csv"),
                     default="text", help="output format (default: text)")
    run.add_argument("--json", action="store_true",
                     help="shorthand for --format json; with 'all', emits "
                          "one JSON array of every result")
    run.add_argument("--output", default=None, metavar="PATH",
                     help="write the report to a file instead of stdout; "
                          "with 'all' in csv mode, one file per experiment "
                          "(id suffixed)")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="stream a JSONL span/event trace of the run to PATH")
    run.add_argument("--metrics", default=None, metavar="PATH",
                     help="write a Prometheus-format metrics dump to PATH")
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="fault scenario for fault-aware experiments, e.g. "
                          "'outage:1@10+5,slow:0@2+20x3,loss:0.05,seed:7' "
                          "(see docs/FAULTS.md for the grammar)")
    run.add_argument("--engine", choices=("auto", "events", "analytic"),
                     default=None,
                     help="simulation engine: 'auto' takes the analytic "
                          "fast path for fault-free unobserved runs, "
                          "'events'/'analytic' force one engine for every "
                          "simulation (default: auto, or $REPRO_SIM_ENGINE; "
                          "see docs/PERFORMANCE.md)")
    _add_batch_flags(run)

    report = sub.add_parser(
        "report", help="run every experiment and write one markdown report")
    report.add_argument("--output", default="reproduction_report.md",
                        metavar="PATH", help="report destination")
    report.add_argument("--trials", type=int, default=None,
                        help="trials per size for sampling experiments")
    _add_batch_flags(report)

    hecr_cmd = sub.add_parser("hecr", help="compute HECR/X for a profile")
    hecr_cmd.add_argument("--profile", required=True,
                          help="comma-separated rho values, e.g. 1,0.5,0.25")
    hecr_cmd.add_argument("--tau", type=float, default=PAPER_TABLE1.tau)
    hecr_cmd.add_argument("--pi", type=float, default=PAPER_TABLE1.pi)
    hecr_cmd.add_argument("--delta", type=float, default=PAPER_TABLE1.delta)

    serve = sub.add_parser(
        "serve", help="start the JSON-over-HTTP serving layer")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8023,
                       help="bind port; 0 asks the OS for an ephemeral port "
                            "(default: 8023)")
    serve.add_argument("--batch-window", type=float, default=2.0,
                       metavar="MS",
                       help="micro-batching window in milliseconds; 0 "
                            "disables coalescing (default: 2.0)")
    serve.add_argument("--max-batch", type=int, default=64, metavar="N",
                       help="max evaluation requests solved in one "
                            "coalesced batch (default: 64)")
    serve.add_argument("--max-inflight", type=int, default=64, metavar="N",
                       help="admitted-request ceiling; excess is shed with "
                            "503 + Retry-After (default: 64)")
    serve.add_argument("--rate", type=float, default=0.0, metavar="RPS",
                       help="token-bucket admission rate in requests/second; "
                            "0 disables rate limiting (default: 0)")
    serve.add_argument("--burst", type=float, default=64.0, metavar="N",
                       help="token-bucket capacity (default: 64)")
    serve.add_argument("--deadline", type=float, default=0.0,
                       metavar="SECONDS",
                       help="default per-request deadline; 0 = none; a "
                            "request may override via X-Repro-Deadline-Ms "
                            "(default: 0)")
    serve.add_argument("--cache-ttl", type=float, default=60.0,
                       metavar="SECONDS",
                       help="response-cache entry lifetime; 0 disables the "
                            "cache (default: 60)")
    serve.add_argument("--cache-entries", type=int, default=1024, metavar="N",
                       help="response-cache capacity (default: 1024)")
    serve.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                       help="worker processes for experiment dispatch "
                            "(default: 1)")
    serve.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk experiment result cache")
    serve.add_argument("--cache-dir", default=None, metavar="PATH",
                       help="experiment result-cache directory (default: "
                            "$REPRO_CACHE_DIR or the platform cache home)")
    serve.add_argument("--engine", choices=("auto", "events", "analytic"),
                       default=None,
                       help="force a simulation engine for the server "
                            "process and its dispatch workers (default: "
                            "process default / $REPRO_SIM_ENGINE)")

    compare_cmd = sub.add_parser(
        "compare", help="compare two clusters with every measure/predictor")
    compare_cmd.add_argument("--first", required=True,
                             help="first profile, e.g. 0.9,0.1")
    compare_cmd.add_argument("--second", required=True,
                             help="second profile, e.g. 0.5,0.5")
    compare_cmd.add_argument("--tau", type=float, default=PAPER_TABLE1.tau)
    compare_cmd.add_argument("--pi", type=float, default=PAPER_TABLE1.pi)
    compare_cmd.add_argument("--delta", type=float, default=PAPER_TABLE1.delta)
    return parser


#: Experiments that accept the sampling overrides.
_SAMPLING_EXPERIMENTS = ("variance-trials", "variance-threshold",
                         "moment-ablation")

#: Experiments that accept a ``--faults`` scenario.
_FAULT_EXPERIMENTS = ("failure-resilience",)


def _experiment_kwargs(experiment_id: str, args: argparse.Namespace) -> dict:
    kwargs = {}
    if args.trials is not None and experiment_id in _SAMPLING_EXPERIMENTS:
        kwargs["trials_per_size"] = args.trials
    if args.seed is not None and experiment_id in _SAMPLING_EXPERIMENTS:
        kwargs["seed"] = args.seed
    if getattr(args, "faults", None) and experiment_id in _FAULT_EXPERIMENTS:
        kwargs["faults"] = args.faults
    return kwargs


def _render_result(result, fmt: str) -> str:
    from repro.experiments.export import result_to_csv, result_to_json
    if fmt == "json":
        return result_to_json(result)
    if fmt == "csv":
        return result_to_csv(result)
    return result.render() + "\n"


def _emit(text: str, fmt: str, label: str, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {label} ({fmt}) to {output}")
    else:
        print(text)


def _suffixed_path(output: str, experiment_id: str) -> str:
    """``out.csv`` -> ``out.<experiment_id>.csv`` (id before the suffix)."""
    from pathlib import Path
    path = Path(output)
    return str(path.with_name(f"{path.stem}.{experiment_id}{path.suffix}"))


def _emit_many(rendered: list[tuple[str, str]], fmt: str,
               output: str | None) -> None:
    """Emit several experiments' reports without clobbering each other.

    To stdout: print in order, as before.  To a file: text becomes one
    concatenated document; csv becomes one file per experiment with the
    id spliced into the name (concatenated CSV would repeat headers and
    parse as garbage).
    """
    if not output:
        for _, text in rendered:
            print(text)
        return
    if fmt == "csv":
        for experiment_id, text in rendered:
            _emit(text, fmt, experiment_id, _suffixed_path(output, experiment_id))
        return
    document = "\n".join(text if text.endswith("\n") else text + "\n"
                         for _, text in rendered)
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(document)
    print(f"wrote {len(rendered)} experiments ({fmt}) to {output}")


def _warn_ignored_sampling_flags(args: argparse.Namespace) -> None:
    """Satellite fix: say so instead of silently dropping ``--seed``/
    ``--trials`` for experiments that take neither."""
    if args.experiment == "all" or args.experiment in _SAMPLING_EXPERIMENTS:
        return
    for flag, value in (("--trials", args.trials), ("--seed", args.seed)):
        if value is not None:
            print(f"warning: {flag} ignored — experiment "
                  f"{args.experiment!r} is not a sampling experiment "
                  f"(sampling: {', '.join(_SAMPLING_EXPERIMENTS)})",
                  file=sys.stderr)


def _warn_ignored_faults_flag(args: argparse.Namespace) -> None:
    if not getattr(args, "faults", None):
        return
    if args.experiment == "all" or args.experiment in _FAULT_EXPERIMENTS:
        return
    print(f"warning: --faults ignored — experiment {args.experiment!r} is "
          f"not fault-aware (fault-aware: {', '.join(_FAULT_EXPERIMENTS)})",
          file=sys.stderr)


def _failure_exit_code(batch) -> int:
    """0 clean; 3 when every failure is in the fault/simulation family
    (so scripts can distinguish 'the scenario broke the run' from an
    ordinary experiment bug); 1 otherwise."""
    if not batch.failures:
        return 0
    if all((item.error or "").split(":", 1)[0] in _FAULT_ERROR_NAMES
           for item in batch.failures):
        return 3
    return 1


def _cmd_run(args: argparse.Namespace) -> int:
    """The ``run`` subcommand: exit 0 on success, 1 on experiment
    failure, 2 for an unknown experiment id, 3 for fault/simulation
    errors (a bad ``--faults`` spec included)."""
    from contextlib import nullcontext

    from repro.batch import ResultCache, default_cache_dir, run_batch
    from repro.io import results_to_json
    from repro.obs import (JsonlTraceWriter, Observation, Tracer,
                           default_registry, observe, write_metrics)

    fmt = "json" if args.json else args.format
    known = list_experiments()
    if args.experiment == "all":
        experiment_ids = known
    elif args.experiment in known:
        experiment_ids = [args.experiment]
    else:
        print(f"error: unknown experiment {args.experiment!r}; "
              f"known: {', '.join(known)}", file=sys.stderr)
        return 2
    _warn_ignored_sampling_flags(args)
    _warn_ignored_faults_flag(args)
    if args.engine == "analytic" and args.faults:
        print("error: --engine analytic cannot run a --faults scenario — "
              "fault timelines require the event engine; drop --engine or "
              "use --engine auto/events", file=sys.stderr)
        return 3
    if args.engine:
        import os

        from repro.simulation.runner import set_default_engine
        # Both halves matter: set_default_engine() covers in-process runs
        # (--jobs 1), the environment variable covers batch worker
        # processes, which re-read it at import.
        os.environ["REPRO_SIM_ENGINE"] = args.engine
        set_default_engine(args.engine)
    if args.faults:
        # Validate the spec before any work: a malformed clause raises
        # FaultSpecError, which main() maps to exit code 3.
        from repro.faults.spec import parse_faults
        parse_faults(args.faults)

    try:
        trace_writer = JsonlTraceWriter(args.trace) if args.trace else None
    except OSError as exc:
        print(f"error: cannot open trace file {args.trace!r}: {exc}",
              file=sys.stderr)
        return 1
    obs_ctx = None
    if args.trace or args.metrics:
        tracer = Tracer(sink=trace_writer, keep_records=False) if trace_writer else None
        obs_ctx = Observation(tracer=tracer, registry=default_registry())

    cache = None
    if args.experiment == "all" and not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    kwargs_by_id = {experiment_id: _experiment_kwargs(experiment_id, args)
                    for experiment_id in experiment_ids}

    try:
        with observe(obs_ctx) if obs_ctx is not None else nullcontext():
            batch = run_batch(experiment_ids, kwargs_by_id=kwargs_by_id,
                              jobs=args.jobs, cache=cache,
                              task_timeout=args.task_timeout,
                              retries=args.retries)
    finally:
        if trace_writer is not None:
            trace_writer.close()

    for item in batch.failures:
        print(f"error: experiment {item.experiment_id!r} failed: "
              f"{item.error}", file=sys.stderr)
    results = batch.results
    if fmt == "json" and args.experiment == "all":
        _emit(results_to_json(results), fmt, "all experiments", args.output)
    elif args.experiment == "all":
        _emit_many([(r.experiment_id, _render_result(r, fmt)) for r in results],
                   fmt, args.output)
    elif results:
        _emit(_render_result(results[0], fmt), fmt, results[0].experiment_id,
              args.output)
    if args.experiment == "all":
        cache_note = (f", {batch.cache_hits} cached" if cache is not None else "")
        print(f"ran {len(results)}/{len(experiment_ids)} experiments with "
              f"--jobs {args.jobs} in {batch.wall_seconds:.2f}s{cache_note}",
              file=sys.stderr)
    if args.metrics:
        try:
            write_metrics(default_registry(), args.metrics)
        except OSError as exc:
            print(f"error: cannot write metrics file {args.metrics!r}: {exc}",
                  file=sys.stderr)
            return 1
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    if args.trace:
        print(f"wrote {trace_writer.records_written} trace records to "
              f"{args.trace}", file=sys.stderr)
    return _failure_exit_code(batch)


def _cmd_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: exit 0 on clean shutdown, 1 when the
    bind fails, 3 for engine/simulation errors (e.g. a bad --engine or
    $REPRO_SIM_ENGINE surfacing at boot)."""
    from repro.obs import default_registry
    from repro.service import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host, port=args.port,
        batch_window=args.batch_window / 1000.0,  # CLI speaks milliseconds
        max_batch=args.max_batch, max_inflight=args.max_inflight,
        rate=args.rate, burst=args.burst, deadline=args.deadline,
        cache_entries=args.cache_entries, cache_ttl=args.cache_ttl,
        jobs=args.jobs, no_result_cache=args.no_cache,
        result_cache_dir=args.cache_dir, engine=args.engine)

    def announce(service) -> None:
        print(f"repro-hetero serving on http://{service.host}:{service.port} "
              f"(batch window {args.batch_window:g} ms, max in-flight "
              f"{args.max_inflight})", file=sys.stderr)

    try:
        run_service(config, registry=default_registry(), ready=announce)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Exit codes: 0 success; 1 experiment failure (or a ``serve`` bind
    failure); 2 unknown experiment or unparseable input; 3
    fault/simulation errors (malformed ``--faults`` specs,
    :class:`~repro.errors.SimulationError` and the fault/recovery error
    family) — reported as one stderr line, not a traceback.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(parser, args)
    except (SimulationError, FaultInjectionError, RecoveryError) as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3


def _dispatch(parser: argparse.ArgumentParser,
              args: argparse.Namespace) -> int:
    if args.command == "list":
        if args.json:
            import json

            from repro.experiments.base import experiment_index
            print(json.dumps(experiment_index(), indent=2))
        else:
            for experiment_id in list_experiments():
                print(experiment_id)
        return 0

    if args.command == "run":
        return _cmd_run(args)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "report":
        from repro.batch import ResultCache, default_cache_dir, run_batch
        experiment_ids = list_experiments()
        kwargs_by_id = {}
        for experiment_id in experiment_ids:
            kwargs = {}
            if args.trials is not None and experiment_id in _SAMPLING_EXPERIMENTS:
                kwargs["trials_per_size"] = args.trials
            kwargs_by_id[experiment_id] = kwargs
        cache = (None if args.no_cache
                 else ResultCache(args.cache_dir or default_cache_dir()))
        batch = run_batch(experiment_ids, kwargs_by_id=kwargs_by_id,
                          jobs=args.jobs, cache=cache,
                          task_timeout=args.task_timeout,
                          retries=args.retries)
        for item in batch.failures:
            print(f"error: experiment {item.experiment_id!r} failed: "
                  f"{item.error}", file=sys.stderr)
        lines = ["# Reproduction report",
                 "",
                 "Generated by `repro-hetero report`: every registered "
                 "experiment, rendered.", ""]
        for result in batch.results:
            lines += [f"## {result.experiment_id}", "", "```",
                      result.render(), "```", ""]
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines))
        print(f"wrote {len(batch.results)} experiments to {args.output}")
        return 1 if batch.failures else 0

    if args.command == "hecr":
        try:
            rho = [float(part) for part in args.profile.split(",") if part.strip()]
        except ValueError:
            print(f"error: could not parse profile {args.profile!r}", file=sys.stderr)
            return 2
        profile = Profile(rho)
        params = ModelParams(tau=args.tau, pi=args.pi, delta=args.delta)
        print(f"profile: {profile!r}")
        print(f"X(P)      = {x_measure(profile, params):.6g}")
        print(f"work rate = {work_rate(profile, params):.6g} work units/time unit")
        print(f"HECR      = {hecr(profile, params):.6g}")
        return 0

    if args.command == "compare":
        from repro.core.compare import compare_clusters
        from repro.experiments.tables import render_table
        try:
            first = Profile([float(x) for x in args.first.split(",") if x.strip()])
            second = Profile([float(x) for x in args.second.split(",") if x.strip()])
        except ValueError:
            print("error: could not parse profiles", file=sys.stderr)
            return 2
        params = ModelParams(tau=args.tau, pi=args.pi, delta=args.delta)
        comparison = compare_clusters(first, second, params)
        print(render_table(
            ("quantity", "first", "second"),
            [("profile", str(list(first)), str(list(second))),
             ("X", round(comparison.x1, 6), round(comparison.x2, 6)),
             ("HECR", round(comparison.hecr1, 6), round(comparison.hecr2, 6)),
             ("work ratio first/second",
              round(comparison.work_ratio_1_over_2, 6), "")],
            title="cluster comparison"))
        print()
        print(render_table(("lens", "call", "agrees with truth"),
                           comparison.verdict_rows()))
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
