"""Elementary symmetric functions of profiles (paper §4.1, Table 5).

For a profile ``P = ⟨ρ₁, …, ρₙ⟩`` the paper writes ``F_k^(n)(P)`` for the
k-th *elementary symmetric polynomial* — the sum of all products of k
distinct ρ-values — with the convention ``F₀ ≡ 1``:

.. math::

    F_1 = Σ ρ_i,\\quad F_2 = Σ_{i<j} ρ_iρ_j,\\quad …,\\quad F_n = Π ρ_i.

These are the coordinates in which ``X(P)`` becomes a ratio of linear
forms (Lemma 1) and through which variance enters the story (Theorem 5).

Implementation: the classic O(n²) dynamic program (each value updates the
coefficient vector of ``Π (1 + ρᵢ t)``), in a float and an exact-Fraction
variant, plus Newton's identities as an independent cross-check route
from power sums.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence, Union

import numpy as np

from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.util.arrays import as_float_vector

__all__ = [
    "elementary_symmetric",
    "elementary_symmetric_exact",
    "symmetric_function",
    "power_sums",
    "elementary_from_power_sums",
]

ProfileLike = Union[Profile, Iterable[float]]


def _values(profile: ProfileLike) -> np.ndarray:
    if isinstance(profile, Profile):
        return profile.rho
    return as_float_vector(profile, name="profile")


def elementary_symmetric(profile: ProfileLike) -> np.ndarray:
    """All elementary symmetric functions ``[F₀, F₁, …, Fₙ]`` at once.

    Returns
    -------
    numpy.ndarray
        Length ``n + 1``; entry k is ``F_k^(n)``; entry 0 is 1.

    Notes
    -----
    The DP multiplies out ``Π (1 + ρᵢ t)`` one factor at a time; each
    update is a vectorised slice operation, so the whole computation is
    O(n²) flops with O(n) NumPy calls.  For ρ ∈ (0, 1] all coefficients
    are positive and bounded by binomial(n, k), so no cancellation
    occurs.

    Examples
    --------
    >>> elementary_symmetric([1.0, 2.0, 3.0]).tolist()
    [1.0, 6.0, 11.0, 6.0]
    """
    values = _values(profile)
    n = values.size
    e = np.zeros(n + 1)
    e[0] = 1.0
    for k, v in enumerate(values, start=1):
        # RHS is evaluated into a temporary before assignment, so the
        # shifted self-reference is safe.
        e[1:k + 1] = e[1:k + 1] + v * e[0:k]
    return e


def elementary_symmetric_exact(profile: ProfileLike) -> tuple[Fraction, ...]:
    """Exact-rational ``[F₀, …, Fₙ]`` (ground truth for the float DP)."""
    if isinstance(profile, Profile):
        values: Sequence[Fraction] = profile.exact_rho()
    else:
        values = [Fraction(v) for v in profile]
        if not values:
            raise InvalidProfileError("profile must be non-empty")
    e: list[Fraction] = [Fraction(1)] + [Fraction(0)] * len(values)
    for k, v in enumerate(values, start=1):
        for i in range(k, 0, -1):
            e[i] += v * e[i - 1]
    return tuple(e)


def symmetric_function(profile: ProfileLike, k: int) -> float:
    """A single ``F_k^(n)`` value.

    Computes the whole DP; if you need several k's, call
    :func:`elementary_symmetric` once instead.
    """
    values = _values(profile)
    if not (0 <= k <= values.size):
        raise InvalidProfileError(
            f"symmetric-function order k must lie in [0, n={values.size}], got {k}")
    return float(elementary_symmetric(values)[k])


def power_sums(profile: ProfileLike, max_order: int) -> np.ndarray:
    """Power sums ``p_k = Σ ρᵢᵏ`` for ``k = 1 … max_order``.

    ``p₁`` and ``p₂`` are the moments behind eq. (7)'s variance; higher
    orders feed Newton's identities.
    """
    values = _values(profile)
    if max_order < 1:
        raise InvalidProfileError(f"max_order must be >= 1, got {max_order}")
    powers = values[None, :] ** np.arange(1, max_order + 1)[:, None]
    return powers.sum(axis=1)


def elementary_from_power_sums(p: np.ndarray, n: int) -> np.ndarray:
    """Newton's identities: recover ``[F₀ … F_m]`` from power sums.

    Parameters
    ----------
    p:
        Power sums ``p₁ … p_m`` (1-indexed conceptually; ``p[0]`` is p₁).
    n:
        Number of underlying values (only orders up to ``min(m, n)`` are
        meaningful elementary functions; beyond n they vanish).

    Notes
    -----
    ``k·F_k = Σ_{i=1}^{k} (−1)^{i−1} F_{k−i} p_i``.  Unlike the DP this
    route *does* involve cancellation, so it serves as an accuracy
    cross-check rather than the production path.
    """
    p = np.asarray(p, dtype=float)
    m = p.size
    e = np.zeros(m + 1)
    e[0] = 1.0
    for k in range(1, m + 1):
        signs = (-1.0) ** np.arange(k)
        e[k] = np.dot(signs * p[:k], e[k - 1::-1]) / k
    if m > n:
        e = e[:n + 1]
    return e
