"""Lemma 1: X(P) as a ratio of symmetric-function linear forms.

Lemma 1 of the paper states that for every cluster size n there are
positive constants α₀…α_{n−1} and β₀…β_n — depending only on the
environment (A, B, τδ), not on the profile — such that

.. math::

    X(P) = \\frac{α_0 F_0 + α_1 F_1 + ⋯ + α_{n-1} F_{n-1}}
                 {β_0 F_0 + β_1 F_1 + ⋯ + β_n F_n},

with

.. math::

    α_i = B^i \\sum_{k=0}^{n-1-i} A^{n-1-k-i} (τδ)^k,
    \\qquad
    β_i = B^i A^{n-i}.

(The denominator is just ``Π (Bρᵢ + A)`` expanded; the numerator's
coefficients come from the I–J product analysis in the lemma's proof.)

This module computes the coefficient vectors, evaluates X through them
(an O(n²) route that must — and in tests does — agree with eq. (1)'s
O(n) route), and exposes Claim 1 of Proposition 3's proof:
``αᵢβⱼ > αⱼβᵢ`` for all i < j, the inequality that makes cross-product
dominance (Proposition 3) sufficient for outperformance.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Union

import numpy as np

from repro.core.params import ExactParams, ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidParameterError
from repro.predictors.symmetric import (
    elementary_symmetric,
    elementary_symmetric_exact,
)

__all__ = [
    "lemma1_coefficients",
    "lemma1_coefficients_exact",
    "x_from_symmetric_functions",
    "x_from_symmetric_functions_exact",
    "claim1_margin",
]

ProfileLike = Union[Profile, Iterable[float]]


def lemma1_coefficients(n: int, params: ModelParams) -> tuple[np.ndarray, np.ndarray]:
    """The Lemma-1 coefficient vectors ``(α, β)`` for cluster size n.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``alpha`` of length n (orders 0 … n−1) and ``beta`` of length
        n + 1 (orders 0 … n).  All entries are positive.

    Notes
    -----
    ``α_i = B^i Σ_{k≤n−1−i} A^{n−1−k−i} (τδ)^k`` is a finite geometric
    sum in ``τδ/A``; we evaluate it by cumulative summation over the
    anti-diagonal rather than the closed form to stay exact when
    ``A = τδ``.
    """
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    A, B, td = params.A, params.B, params.tau_delta
    i = np.arange(n)
    beta = B ** np.arange(n + 1) * A ** (n - np.arange(n + 1))
    # α_i: sum over k of A^{n−1−k−i}·(τδ)^k, k = 0 … n−1−i.
    alpha = np.empty(n)
    for idx in range(n):
        k = np.arange(n - idx)
        alpha[idx] = (B ** idx) * np.sum(A ** (n - 1 - k - idx) * td ** k)
    _ = i
    return alpha, beta


def lemma1_coefficients_exact(n: int, params: Union[ModelParams, ExactParams]
                              ) -> tuple[tuple[Fraction, ...], tuple[Fraction, ...]]:
    """Exact-rational Lemma-1 coefficients."""
    if n < 1:
        raise InvalidParameterError(f"n must be >= 1, got {n}")
    p = params if isinstance(params, ExactParams) else params.exact()
    A, B, td = p.A, p.B, p.tau_delta
    beta = tuple(B ** i * A ** (n - i) for i in range(n + 1))
    alpha = tuple(
        B ** i * sum((A ** (n - 1 - k - i) * td ** k for k in range(n - i)),
                     Fraction(0))
        for i in range(n)
    )
    return alpha, beta


def x_from_symmetric_functions(profile: ProfileLike, params: ModelParams) -> float:
    """Evaluate ``X(P)`` through Lemma 1's symmetric-function expansion.

    An independent route to the same number as
    :func:`repro.core.measure.x_measure`; the property-based tests pit
    the two against each other across random profiles and parameters.
    """
    e = elementary_symmetric(profile)
    n = e.size - 1
    alpha, beta = lemma1_coefficients(n, params)
    numerator = float(np.dot(alpha, e[:n]))
    denominator = float(np.dot(beta, e))
    return numerator / denominator


def x_from_symmetric_functions_exact(profile: ProfileLike,
                                     params: Union[ModelParams, ExactParams]) -> Fraction:
    """Exact-rational Lemma-1 evaluation of X(P)."""
    e = elementary_symmetric_exact(profile)
    n = len(e) - 1
    alpha, beta = lemma1_coefficients_exact(n, params)
    numerator = sum((a * f for a, f in zip(alpha, e[:n])), Fraction(0))
    denominator = sum((b * f for b, f in zip(beta, e)), Fraction(0))
    return numerator / denominator


def claim1_margin(i: int, j: int, n: int, params: ModelParams) -> float:
    """Claim 1 of Proposition 3's proof: the positive margin ``αᵢβⱼ − αⱼβᵢ``.

    For indices ``i < j ≤ n`` the claim asserts this is strictly positive
    (with the convention ``α_n = 0``, covering j = n).  The closed form
    from the proof is ``B^{i+j} Σ_{k=n−j}^{n−1−i} A^{2n−1−k−i−j}(τδ)^k``;
    we evaluate the plain difference, which the tests compare against
    exact arithmetic.
    """
    if not (0 <= i < j <= n):
        raise InvalidParameterError(f"need 0 <= i < j <= n, got i={i}, j={j}, n={n}")
    alpha, beta = lemma1_coefficients(n, params)
    alpha_full = np.append(alpha, 0.0)  # α_n = 0: F_n never appears upstairs
    return float(alpha_full[i] * beta[j] - alpha_full[j] * beta[i])
