"""Statistical moments of profiles and their symmetric-function ties
(paper §4.2, eqs. (7)–(8)).

The bridge the paper exploits:

* arithmetic mean  = ``F₁/n``;
* geometric mean   = ``Fₙ^{1/n}``;
* variance         = ``(p₂ − F₁²/n)/n`` where ``p₂ = Σρᵢ²``  (eq. 7);
* ``F₂ = (F₁² − p₂)/2``                                        (eq. 8),

so for profiles sharing a mean, **larger variance ⇔ smaller F₂** — the
identity that turns Proposition 3's F₂-inequality into Theorem 5's
variance statement.  This module computes the moment summary and both
directions of the variance/F₂ conversion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

import numpy as np

from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.util.arrays import validate_positive_vector

__all__ = [
    "MomentSummary",
    "moment_summary",
    "variance_from_symmetric",
    "f2_from_mean_and_variance",
]

ProfileLike = Union[Profile, Iterable[float]]


def _values(profile: ProfileLike) -> np.ndarray:
    if isinstance(profile, Profile):
        return profile.rho
    return validate_positive_vector(profile, name="profile")


@dataclass(frozen=True, slots=True)
class MomentSummary:
    """The moment fingerprint of a profile."""

    n: int
    mean: float
    variance: float
    std: float
    geometric_mean: float
    harmonic_mean: float
    skewness: float
    kurtosis_excess: float

    @property
    def coefficient_of_variation(self) -> float:
        """std/mean — scale-free heterogeneity measure."""
        return self.std / self.mean


def moment_summary(profile: ProfileLike) -> MomentSummary:
    """Compute all moments the §4 analyses touch, in one pass.

    Population (not sample) normalisation throughout, matching eq. (7).
    Skewness/kurtosis of a homogeneous profile are defined as 0.
    """
    v = _values(profile)
    n = v.size
    mean = float(v.mean())
    centered = v - mean
    var = float(np.mean(centered ** 2))
    std = var ** 0.5
    if std > 0.0:
        skew = float(np.mean(centered ** 3)) / std ** 3
        kurt = float(np.mean(centered ** 4)) / std ** 4 - 3.0
    else:
        skew = 0.0
        kurt = 0.0
    return MomentSummary(
        n=n,
        mean=mean,
        variance=var,
        std=std,
        geometric_mean=float(np.exp(np.mean(np.log(v)))),
        harmonic_mean=float(n / np.sum(1.0 / v)),
        skewness=skew,
        kurtosis_excess=kurt,
    )


def variance_from_symmetric(f1: float, f2: float, n: int) -> float:
    """Variance from ``F₁`` and ``F₂`` via eqs. (7)–(8).

    ``p₂ = F₁² − 2F₂`` (eq. 8 rearranged), then
    ``VAR = p₂/n − (F₁/n)²`` (eq. 7).
    """
    if n < 1:
        raise InvalidProfileError(f"n must be >= 1, got {n}")
    p2 = f1 * f1 - 2.0 * f2
    return p2 / n - (f1 / n) ** 2


def f2_from_mean_and_variance(mean: float, variance: float, n: int) -> float:
    """``F₂`` of any profile with the given mean and variance.

    Inverting :func:`variance_from_symmetric`:
    ``F₂ = ((n−1)·F₁²/n − n·VAR)/2`` with ``F₁ = n·mean``.  Profiles
    sharing a mean trade F₂ against variance one-for-one — Theorem 5's
    pivot.
    """
    if n < 1:
        raise InvalidProfileError(f"n must be >= 1, got {n}")
    if variance < 0:
        raise InvalidProfileError(f"variance must be nonnegative, got {variance!r}")
    f1 = n * mean
    p2 = n * variance + f1 * f1 / n
    return (f1 * f1 - p2) / 2.0
