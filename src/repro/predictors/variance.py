"""The variance predictor (paper Theorem 5, Corollary 1, §4.3).

For clusters of equal mean speed the paper proposes predicting the more
powerful cluster from the ρ-variances alone:

* **Theorem 5(1)**: if Proposition 3's inequality system certifies P₁,
  then VAR(P₁) > VAR(P₂) — larger variance is *necessary* for certified
  dominance among equal-mean profiles.
* **Theorem 5(2)**: for n = 2 it is a biconditional: the
  larger-variance cluster *is* the more powerful one.
* **Corollary 1**: heterogeneity lends power — a heterogeneous
  2-computer cluster beats the homogeneous cluster of the same mean.
* **§4.3 (empirical)**: for larger n the prediction is right ≈76% of
  the time, and (empirically) always when the variance gap exceeds
  θ = 0.167.

This module implements the predictor, its evaluation against ground
truth (X/HECR comparison), and a set of alternative moment predictors
used in the ablation study.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.core.hecr import hecr
from repro.core.measure import x_measure
from repro.core.params import ModelParams
from repro.core.profile import Profile
from repro.errors import InvalidProfileError

__all__ = [
    "PredictionOutcome",
    "PairEvaluation",
    "variance_prediction",
    "evaluate_pair",
    "heterogeneity_gain",
    "MOMENT_PREDICTORS",
]

#: Relative tolerance for the equal-mean precondition check.
MEAN_RTOL = 1e-9


class PredictionOutcome(Enum):
    """How a profile-based prediction fared against ground truth."""

    CORRECT = "good"          # the paper's "good" label
    INCORRECT = "bad"         # the paper's "bad" label
    INDECISIVE = "indecisive"  # predictor had no opinion (equal statistic)


@dataclass(frozen=True)
class PairEvaluation:
    """Ground truth and prediction for one equal-mean cluster pair.

    Attributes
    ----------
    outcome:
        CORRECT iff the higher-variance profile has the larger X
        (equivalently the smaller HECR).
    variance_gap:
        ``|VAR(P₁) − VAR(P₂)|`` — the quantity the §4.3 threshold θ
        gates on.
    hecr_gap:
        ``|HECR(P₁) − HECR(P₂)|`` — the paper notes "bad" pairs have
        small HECR gaps.
    predicted_winner, actual_winner:
        0 or 1 (profile position), −1 when indeterminate.
    """

    outcome: PredictionOutcome
    variance_gap: float
    hecr_gap: float
    predicted_winner: int
    actual_winner: int


def _require_equal_means(p1: Profile, p2: Profile) -> None:
    scale = max(abs(p1.mean), abs(p2.mean), 1e-300)
    if abs(p1.mean - p2.mean) > MEAN_RTOL * scale:
        raise InvalidProfileError(
            f"variance prediction requires equal mean speeds "
            f"(got {p1.mean!r} vs {p2.mean!r})")


def variance_prediction(p1: Profile, p2: Profile) -> int:
    """Predict the more powerful of two equal-mean clusters by variance.

    Returns 0 if P₁ is predicted to win (larger variance), 1 if P₂,
    −1 if the variances tie (no prediction).
    """
    _require_equal_means(p1, p2)
    v1, v2 = p1.variance, p2.variance
    if v1 > v2:
        return 0
    if v2 > v1:
        return 1
    return -1


def evaluate_pair(p1: Profile, p2: Profile, params: ModelParams,
                  *, compute_hecr_gap: bool = True) -> PairEvaluation:
    """Run the §4.3 trial protocol on one equal-mean pair.

    Ground truth is the X-measure comparison (equivalent to the paper's
    HECR comparison — HECR is strictly decreasing in X for fixed n — but
    numerically cheaper); the HECR gap is additionally reported because
    the paper uses it to characterise "bad" pairs.
    """
    predicted = variance_prediction(p1, p2)
    x1 = x_measure(p1, params)
    x2 = x_measure(p2, params)
    if x1 > x2:
        actual = 0
    elif x2 > x1:
        actual = 1
    else:
        actual = -1

    if predicted == -1 or actual == -1:
        outcome = PredictionOutcome.INDECISIVE
    elif predicted == actual:
        outcome = PredictionOutcome.CORRECT
    else:
        outcome = PredictionOutcome.INCORRECT

    hecr_gap = float("nan")
    if compute_hecr_gap:
        hecr_gap = abs(hecr(p1, params) - hecr(p2, params))
    return PairEvaluation(
        outcome=outcome,
        variance_gap=abs(p1.variance - p2.variance),
        hecr_gap=hecr_gap,
        predicted_winner=predicted,
        actual_winner=actual,
    )


def heterogeneity_gain(mean: float, spread: float, params: ModelParams) -> float:
    """Corollary 1 quantified: the power a 2-computer cluster gains from
    heterogeneity.

    Compares ``⟨mean + spread, mean − spread⟩`` against the homogeneous
    ``⟨mean, mean⟩`` of the same mean speed and returns the work ratio
    ``W(heterogeneous)/W(homogeneous)`` — strictly greater than 1 for any
    ``0 < spread < mean`` (Theorem 5(2)).
    """
    if not (0.0 < spread < mean):
        raise InvalidProfileError(
            f"need 0 < spread < mean, got spread={spread!r}, mean={mean!r}")
    hetero = Profile([mean + spread, mean - spread])
    homog = Profile([mean, mean])
    x_het = x_measure(hetero, params)
    x_hom = x_measure(homog, params)
    td = params.tau_delta
    return (td + 1.0 / x_hom) / (td + 1.0 / x_het)


def _predict_by(stat: Callable[[Profile], float], larger_wins: bool
                ) -> Callable[[Profile, Profile], int]:
    def predictor(p1: Profile, p2: Profile) -> int:
        s1, s2 = stat(p1), stat(p2)
        if s1 == s2:
            return -1
        first_larger = s1 > s2
        return 0 if first_larger == larger_wins else 1
    return predictor


#: Alternative moment predictors for the ablation study: each maps an
#: equal-mean pair to 0/1/−1 like :func:`variance_prediction`.  Smaller
#: geometric/harmonic mean intuitively signals faster computers hiding in
#: the profile, hence "larger_wins=False" for those.
MOMENT_PREDICTORS: dict[str, Callable[[Profile, Profile], int]] = {
    "variance": _predict_by(lambda p: p.variance, larger_wins=True),
    "geometric-mean": _predict_by(lambda p: p.geometric_mean, larger_wins=False),
    "harmonic-mean": _predict_by(
        lambda p: p.n / float(np.sum(1.0 / p.rho)), larger_wins=False),
    "min-rho": _predict_by(lambda p: p.fastest_rho, larger_wins=False),
}
