"""Majorization as a power predictor (extension beyond Theorem 5).

Variance is a *scalar* summary of spread; **majorization** is the full
partial order.  For equal-sum vectors, ``P₁ ⪰ P₂`` (P₁ majorizes P₂)
when every top-k partial sum of the descending-sorted ρ-values of P₁
dominates P₂'s:

.. math::

    \\sum_{i≤k} ρ^↓_{1i} \\;≥\\; \\sum_{i≤k} ρ^↓_{2i}
    \\quad (k = 1 … n−1),\\qquad
    \\sum_i ρ_{1i} = \\sum_i ρ_{2i}.

The X-measure is *Schur-convex* on equal-mean profiles — majorization
implies at-least-equal power.  Proof sketch (docs/THEORY.md §8): a
mean-preserving spread of two components fixes their sum and lowers
their product, which lowers the denominator of eq. (3)'s lead fraction
while leaving its numerator and the Y/Z factors untouched, so every MPS
step weakly raises X; majorization is exactly reachability by MPS
steps.  Since majorization is strictly finer than variance (P₁ ⪰ P₂
implies VAR(P₁) ≥ VAR(P₂) but not conversely), this predictor can never
do worse than variance where it speaks — and the §4.3 "bad pairs" turn
out to be exactly pairs the majorization order cannot compare.  The
``majorization`` experiment measures all of this; the property suite
verifies the MPS monotonicity over randomized environments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.profile import Profile
from repro.errors import InvalidProfileError

__all__ = ["MajorizationResult", "compare_majorization",
           "majorization_prediction"]

#: Relative tolerance for the equal-sum precondition and the partial-sum
#: comparisons (float profiles carry rounding from their construction).
_RTOL = 1e-9


@dataclass(frozen=True, slots=True)
class MajorizationResult:
    """Outcome of a majorization comparison between equal-sum profiles.

    Attributes
    ----------
    first_majorizes, second_majorizes:
        The two one-sided dominance verdicts.  Both True only for equal
        (as multisets) profiles; both False means *incomparable* — the
        regime where scalar predictors like variance start guessing.
    """

    first_majorizes: bool
    second_majorizes: bool

    @property
    def comparable(self) -> bool:
        return self.first_majorizes or self.second_majorizes

    @property
    def equivalent(self) -> bool:
        """Equal as multisets (each majorizes the other)."""
        return self.first_majorizes and self.second_majorizes


def compare_majorization(p1: Profile, p2: Profile) -> MajorizationResult:
    """Full two-sided majorization comparison.

    Raises
    ------
    InvalidProfileError
        If the profiles differ in size or total speed budget (sum of ρ):
        majorization is an equal-sum order.
    """
    if p1.n != p2.n:
        raise InvalidProfileError(
            f"majorization compares equal-size clusters (got {p1.n} vs {p2.n})")
    a = np.sort(p1.rho)[::-1]
    b = np.sort(p2.rho)[::-1]
    total = float(a.sum())
    if abs(total - float(b.sum())) > _RTOL * max(total, 1e-300):
        raise InvalidProfileError(
            f"majorization compares equal-sum profiles "
            f"(got {total!r} vs {float(b.sum())!r})")
    ca = np.cumsum(a)
    cb = np.cumsum(b)
    tol = _RTOL * max(total, 1e-300)
    first = bool(np.all(ca[:-1] >= cb[:-1] - tol))
    second = bool(np.all(cb[:-1] >= ca[:-1] - tol))
    return MajorizationResult(first_majorizes=first, second_majorizes=second)


def majorization_prediction(p1: Profile, p2: Profile) -> int:
    """Predict the more powerful equal-mean cluster by majorization.

    Returns 0 if P₁ majorizes (strictly), 1 if P₂ does, −1 when the
    profiles are incomparable or equivalent — the predictor *abstains*
    rather than guesses, which is exactly what variance cannot do.
    """
    result = compare_majorization(p1, p2)
    if result.equivalent or not result.comparable:
        return -1
    return 0 if result.first_majorizes else 1
