"""Profile-dominance predictors (paper §4, Propositions 2 and 3).

Two sufficient conditions let one cluster's superiority be read off the
profiles alone, without evaluating X:

* **Minorization** (from Proposition 2): entrywise ρ-domination after
  power-ordering.  Sufficient but far from necessary — the paper's
  ⟨0.99, 0.02⟩ vs ⟨0.5, 0.5⟩ example beats a cluster it doesn't minorize.
* **Cross-product dominance** (Proposition 3): for all index pairs
  i < j, ``F_i(P₁)·F_j(P₂) ≥ F_i(P₂)·F_j(P₁)`` with at least one strict
  inequality.  Via Claim 1 (``αᵢβⱼ > αⱼβᵢ``) this forces
  ``X(P₁) > X(P₂)``.

Both tests return rich result objects so the experiments can report *why*
a prediction fired and how often each sufficient condition applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.profile import Profile
from repro.errors import InvalidProfileError
from repro.predictors.symmetric import elementary_symmetric

__all__ = [
    "DominanceVerdict",
    "CrossProductResult",
    "cross_product_dominance",
    "minorization_predicts",
]


class DominanceVerdict(Enum):
    """Outcome of a sufficient-condition dominance test."""

    FIRST_DOMINATES = "first"
    SECOND_DOMINATES = "second"
    INDETERMINATE = "indeterminate"   # the condition fires in neither direction


@dataclass(frozen=True)
class CrossProductResult:
    """Detailed outcome of Proposition 3's system of inequalities.

    Attributes
    ----------
    verdict:
        Which profile (if either) the system certifies as more powerful.
    holds_forward, holds_backward:
        Whether the inequality system holds with P₁ (resp. P₂) in the
        leading role.
    strict_pairs_forward, strict_pairs_backward:
        Number of strictly-satisfied (i, j) pairs in each direction.
    n_pairs:
        Total number of index pairs tested, ``(n+1)·n/2``.
    """

    verdict: DominanceVerdict
    holds_forward: bool
    holds_backward: bool
    strict_pairs_forward: int
    strict_pairs_backward: int
    n_pairs: int


def cross_product_dominance(p1: Profile, p2: Profile) -> CrossProductResult:
    """Apply Proposition 3's test in both directions.

    Parameters
    ----------
    p1, p2:
        Equal-size profiles (the symmetric functions compared are
        ``F_0 … F_n`` of each).

    Notes
    -----
    The test needs only the two profiles — remarkably, not the
    environment parameters: whenever it certifies a winner, that cluster
    wins for *every* parameter setting satisfying the standing assumption
    τδ ≤ A ≤ B.  The property-based tests exploit exactly that
    quantifier.
    """
    if p1.n != p2.n:
        raise InvalidProfileError(
            f"cross-product dominance compares equal-size clusters "
            f"(got {p1.n} vs {p2.n})")
    e1 = elementary_symmetric(p1)
    e2 = elementary_symmetric(p2)
    # All pairwise products F_i(a)·F_j(b) at once; keep the i<j triangle.
    fwd = np.outer(e1, e2) - np.outer(e2, e1)   # entry (i,j): F_i(1)F_j(2) − F_i(2)F_j(1)
    iu = np.triu_indices(e1.size, k=1)
    diffs = fwd[iu]
    n_pairs = diffs.size

    holds_forward = bool(np.all(diffs >= 0.0))
    holds_backward = bool(np.all(diffs <= 0.0))
    strict_fwd = int(np.count_nonzero(diffs > 0.0))
    strict_bwd = int(np.count_nonzero(diffs < 0.0))

    if holds_forward and strict_fwd > 0:
        verdict = DominanceVerdict.FIRST_DOMINATES
    elif holds_backward and strict_bwd > 0:
        verdict = DominanceVerdict.SECOND_DOMINATES
    else:
        verdict = DominanceVerdict.INDETERMINATE
    return CrossProductResult(
        verdict=verdict,
        holds_forward=holds_forward and strict_fwd > 0,
        holds_backward=holds_backward and strict_bwd > 0,
        strict_pairs_forward=strict_fwd,
        strict_pairs_backward=strict_bwd,
        n_pairs=n_pairs,
    )


def minorization_predicts(p1: Profile, p2: Profile) -> DominanceVerdict:
    """Prop. 2's entrywise test, as a two-sided verdict."""
    if p1.minorizes(p2):
        return DominanceVerdict.FIRST_DOMINATES
    if p2.minorizes(p1):
        return DominanceVerdict.SECOND_DOMINATES
    return DominanceVerdict.INDETERMINATE
