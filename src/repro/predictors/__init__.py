"""Profile-based power predictors — paper §4.

* :mod:`~repro.predictors.symmetric` — elementary symmetric functions
  ``F_k^(n)`` (Table 5);
* :mod:`~repro.predictors.coefficients` — Lemma 1's α/β coefficients and
  the symmetric-function route to X(P);
* :mod:`~repro.predictors.dominance` — minorization and Proposition 3's
  cross-product test;
* :mod:`~repro.predictors.moments` — moments and the eq. (7)/(8)
  variance–F₂ bridge;
* :mod:`~repro.predictors.variance` — Theorem 5's variance predictor and
  Corollary 1's heterogeneity gain.
"""

from repro.predictors.coefficients import (
    claim1_margin,
    lemma1_coefficients,
    lemma1_coefficients_exact,
    x_from_symmetric_functions,
    x_from_symmetric_functions_exact,
)
from repro.predictors.dominance import (
    CrossProductResult,
    DominanceVerdict,
    cross_product_dominance,
    minorization_predicts,
)
from repro.predictors.majorization import (
    MajorizationResult,
    compare_majorization,
    majorization_prediction,
)
from repro.predictors.moments import (
    MomentSummary,
    f2_from_mean_and_variance,
    moment_summary,
    variance_from_symmetric,
)
from repro.predictors.symmetric import (
    elementary_from_power_sums,
    elementary_symmetric,
    elementary_symmetric_exact,
    power_sums,
    symmetric_function,
)
from repro.predictors.variance import (
    MOMENT_PREDICTORS,
    PairEvaluation,
    PredictionOutcome,
    evaluate_pair,
    heterogeneity_gain,
    variance_prediction,
)

__all__ = [
    "elementary_symmetric",
    "elementary_symmetric_exact",
    "symmetric_function",
    "power_sums",
    "elementary_from_power_sums",
    "lemma1_coefficients",
    "lemma1_coefficients_exact",
    "x_from_symmetric_functions",
    "x_from_symmetric_functions_exact",
    "claim1_margin",
    "DominanceVerdict",
    "CrossProductResult",
    "cross_product_dominance",
    "minorization_predicts",
    "MajorizationResult",
    "compare_majorization",
    "majorization_prediction",
    "MomentSummary",
    "moment_summary",
    "variance_from_symmetric",
    "f2_from_mean_and_variance",
    "PredictionOutcome",
    "PairEvaluation",
    "variance_prediction",
    "evaluate_pair",
    "heterogeneity_gain",
    "MOMENT_PREDICTORS",
]
