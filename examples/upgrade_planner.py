#!/usr/bin/env python3
"""Upgrade planning: which machine should you replace?

The paper's headline practical advice (Theorems 3 and 4): if you can
replace only one computer with a faster one, it is (almost) always best
to replace the *fastest* — a surprise to most operators, who upgrade
the slowest box first.  This example plays out both intuitions on a
concrete cluster and then runs the paper's Figure-3/4 iterative-upgrade
schedule to show the regime where the advice flips.

Run:  python examples/upgrade_planner.py
"""

from repro import FIG34_CALIBRATION, PAPER_TABLE1, Profile, work_ratio
from repro.speedup import (
    additive_work_ratios,
    best_multiplicative_upgrade,
    plan_additive,
    run_trajectory,
    theorem4_regime,
)


def additive_story() -> None:
    print("=" * 64)
    print("Additive upgrades (replace a machine with one phi faster)")
    print("=" * 64)
    cluster = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    phi = 1.0 / 16.0
    ratios = additive_work_ratios(cluster, PAPER_TABLE1, phi)
    print(f"cluster {list(cluster)}; upgrade term phi = {phi}")
    for c, ratio in enumerate(ratios):
        marker = "  <-- best" if ratio == ratios.max() else ""
        print(f"  upgrade C{c + 1} (rho={cluster[c]:.3f}): "
              f"work x{ratio:.4f}{marker}")
    print("Theorem 3: the fastest computer is always the best target.\n")

    # Folk wisdom vs the theorem over a 4-upgrade budget.
    plan = plan_additive(cluster, PAPER_TABLE1, phi, 3)
    print(f"greedy 3-upgrade plan targets computers "
          f"{[i + 1 for i in plan.chosen_sequence()]} "
          f"for a total payoff x{plan.total_work_ratio:.4f}")
    slowest_first = cluster
    for _ in range(3):
        # upgrade the SLOWEST computer instead (folk wisdom)
        idx = int(max(range(slowest_first.n), key=lambda i: slowest_first[i]))
        slowest_first = slowest_first.with_rho_at(idx, slowest_first[idx] - phi)
    folk = work_ratio(slowest_first, cluster, PAPER_TABLE1)
    print(f"folk-wisdom plan (always the slowest) pays only x{folk:.4f}\n")


def multiplicative_story() -> None:
    print("=" * 64)
    print("Multiplicative upgrades (halve a machine's time per unit)")
    print("=" * 64)
    params = FIG34_CALIBRATION
    print(f"Theorem-4 threshold A*tau*delta/B^2 = {params.speedup_threshold:.4g}")

    cluster = Profile([1.0, 1.0, 1.0, 1.0])
    print("\npairwise regime for rho_i=1 vs rho_j, psi=1/2:")
    for rho_j in (1.0, 0.5, 0.25, 0.125, 1 / 16):
        regime = theorem4_regime(1.0, rho_j, 0.5, params)
        print(f"  rho_j = {rho_j:7.4f}: {regime.value}")

    print("\nIterative optimal upgrades from <1,1,1,1> (the paper's Figs 3-4):")
    trajectory = run_trajectory(cluster, params, 0.5, 20)
    for snap in trajectory:
        reason = snap.regime.value if snap.regime else "tie-break"
        print(f"  round {snap.round_index:2d}: upgrade C{snap.chosen + 1} "
              f"({reason:12s}) -> {[f'{r:g}' for r in snap.profile_after.rho]}")
    print("\nPhase 1 rides each fastest computer down; once every machine is")
    print("'very fast' (rho = 1/16), condition (2) flips the advice and the")
    print("slowest machine becomes the right upgrade target.")


def main() -> None:
    additive_story()
    multiplicative_story()


if __name__ == "__main__":
    main()
