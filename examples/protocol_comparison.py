#!/usr/bin/env python3
"""Protocol shoot-out: what Theorem 1's FIFO optimality is worth.

Schedules the same cluster under FIFO (closed form), LIFO (closed form)
and a sample of arbitrary (startup, finishing)-order protocols (each
solved to optimality as a linear program), across increasing
communication intensity.  Also prints the Fig.-2 style action/time
diagram of the FIFO schedule as an ASCII Gantt strip.

Run:  python examples/protocol_comparison.py
"""

import numpy as np

from repro import ModelParams, Profile
from repro.protocols import (
    build_timeline,
    fifo_allocation,
    fifo_saturation_index,
    lifo_allocation,
    lp_allocation,
)


def gantt(allocation, width: int = 72) -> str:
    """Render a timeline as one ASCII Gantt row per resource."""
    timeline = build_timeline(allocation)
    L = allocation.lifespan
    rows = []
    for resource in timeline.resources:
        cells = [" "] * width
        for iv in timeline.on_resource(resource):
            a = int(iv.start / L * (width - 1))
            b = max(a + 1, int(iv.end / L * (width - 1)))
            glyph = {"work-prep": "p", "work-transit": ">",
                     "busy": "#", "result-transit": "<"}[iv.kind]
            for k in range(a, min(b, width)):
                cells[k] = glyph
        rows.append(f"{resource:>10s} |{''.join(cells)}|")
    return "\n".join(rows)


def main() -> None:
    rng = np.random.default_rng(3)
    profile = Profile([1.0, 1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0])
    lifespan = 100.0

    print("protocol work production (4-computer cluster, L = 100):\n")
    print(f"{'tau':>8s} {'FIFO':>12s} {'LIFO':>12s} {'best random':>12s} "
          f"{'FIFO premium':>13s}")
    for tau in (1e-6, 1e-3, 1e-2, 3e-2, 6e-2):
        params = ModelParams(tau=tau, pi=1e-4, delta=1.0)
        if fifo_saturation_index(profile, params) > 1.0:
            print(f"{tau:8.0e}   (communication-saturated: Fig.-2 layout gone)")
            continue
        fifo = fifo_allocation(profile, params, lifespan).total_work
        lifo = lifo_allocation(profile, params, lifespan).total_work
        best_random = 0.0
        for _ in range(8):
            sigma = tuple(rng.permutation(4).tolist())
            phi = tuple(rng.permutation(4).tolist())
            alloc = lp_allocation(profile, params, lifespan, sigma, phi)
            best_random = max(best_random, alloc.total_work)
        print(f"{tau:8.0e} {fifo:12.3f} {lifo:12.3f} {best_random:12.3f} "
              f"{fifo / lifo:13.6f}")

    print("\nFIFO action/time diagram (tau = 0.03 — the paper's Fig. 2 shape):")
    params = ModelParams(tau=3e-2, pi=1e-3, delta=1.0)
    allocation = fifo_allocation(profile, params, lifespan)
    print(gantt(allocation))
    print("\nlegend: p = server packaging, > = work in transit, "
          "# = worker busy, < = results in transit")


if __name__ == "__main__":
    main()
