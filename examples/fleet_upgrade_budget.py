#!/usr/bin/env python3
"""Budgeted fleet upgrades: spending real money on Theorem 3's advice.

A fleet operator gets a vendor catalogue — each line replaces one
machine's rate at a price — and a budget.  Theorems 3–4 rank single
upgrades; the multiple-choice-knapsack planner composes a whole purchase
order.  This example prices a catalogue, compares the exact plan against
the per-cost greedy heuristic and against the folk strategy of
upgrading the slowest machines first, and sanity-checks the winner in
the simulator.

Run:  python examples/fleet_upgrade_budget.py
"""

from repro import PAPER_TABLE1, Profile, x_measure
from repro.protocols import fifo_allocation
from repro.simulation import simulate_allocation
from repro.speedup import (
    UpgradeOption,
    greedy_budgeted_upgrades,
    plan_budgeted_upgrades,
)


def main() -> None:
    params = PAPER_TABLE1
    fleet = Profile([1.0, 1.0, 0.7, 0.5, 0.3])
    catalogue = [
        UpgradeOption(index=0, new_rho=0.5, cost=4.0),    # replace old box
        UpgradeOption(index=0, new_rho=0.8, cost=1.5),    # RAM bump
        UpgradeOption(index=1, new_rho=0.5, cost=4.0),
        UpgradeOption(index=2, new_rho=0.35, cost=3.0),
        UpgradeOption(index=3, new_rho=0.25, cost=3.5),
        UpgradeOption(index=4, new_rho=0.15, cost=5.0),   # hero upgrade
        UpgradeOption(index=4, new_rho=0.25, cost=2.0),
    ]
    budget = 7.0

    print(f"fleet: {list(fleet)}  (X = {x_measure(fleet, params):.3f})")
    print(f"budget: {budget}; catalogue of {len(catalogue)} options\n")

    exact = plan_budgeted_upgrades(fleet, params, catalogue, budget)
    greedy = greedy_budgeted_upgrades(fleet, params, catalogue, budget)

    print("exact plan:")
    for option in exact.chosen:
        print(f"  machine {option.index + 1}: rho {fleet[option.index]:g} -> "
              f"{option.new_rho:g}  (cost {option.cost:g})")
    print(f"  spend {exact.total_cost:g}, X {exact.x_before:.3f} -> "
          f"{exact.x_after:.3f}  (+{100 * exact.improvement:.1f}%)\n")

    print(f"greedy plan:  X -> {greedy.x_after:.3f} "
          f"(+{100 * greedy.improvement:.1f}%), spend {greedy.total_cost:g}")

    # Folk wisdom: pour the budget into the slowest machines first.
    folk = fleet
    spent = 0.0
    for option in sorted(catalogue, key=lambda o: -fleet[o.index]):
        if spent + option.cost <= budget and option.new_rho < folk[option.index]:
            folk = folk.with_rho_at(option.index, option.new_rho)
            spent += option.cost
    print(f"slowest-first:X -> {x_measure(folk, params):.3f} "
          f"(+{100 * (x_measure(folk, params) / exact.x_before - 1):.1f}%), "
          f"spend {spent:g}\n")

    # Confirm the exact plan's payoff end to end in the simulator.
    before = simulate_allocation(fifo_allocation(fleet, params, 100.0))
    after = simulate_allocation(fifo_allocation(exact.new_profile, params, 100.0))
    print(f"simulated work: {before.completed_work:.1f} -> "
          f"{after.completed_work:.1f} "
          f"(x{after.completed_work / before.completed_work:.3f})")


if __name__ == "__main__":
    main()
