#!/usr/bin/env python3
"""Capacity planning with the analysis toolkit.

A cluster operator's questions, answered with the closed forms the
framework provides:

* Which machine is most worth upgrading *right now*?  (gradient)
* Which machine can we least afford to lose?  (contributions)
* Is it worth buying machine n+1, and how fast must it be?  (marginal value)
* When does adding machines stop paying?  (saturation analysis)
* Would a faster network change which cluster we should rent?  (crossover)

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import ModelParams, Profile
from repro.analysis import (
    cluster_size_for_coverage,
    computer_contributions,
    find_tau_crossover,
    marginal_computer_value,
    marginal_speedup_value,
    saturation_fraction,
    saturation_x,
    sweep_tau,
)


def main() -> None:
    params = ModelParams(tau=1e-4, pi=1e-5, delta=1.0)
    fleet = Profile([1.0, 0.8, 0.5, 0.5, 0.2, 0.1]).power_ordered()
    print(f"fleet: {list(fleet)}   (environment: tau={params.tau:g}, "
          f"pi={params.pi:g}, delta={params.delta:g})")

    # --- who to upgrade, who to protect --------------------------------
    value = marginal_speedup_value(fleet, params)
    contrib = computer_contributions(fleet, params)
    print("\nper-machine analysis:")
    print(f"{'machine':>8s} {'rho':>6s} {'upgrade value':>14s} {'contribution':>13s}")
    for c in range(fleet.n):
        print(f"{'C' + str(c + 1):>8s} {fleet[c]:6.2f} {value[c]:14.2f} "
              f"{contrib[c]:13.3f}")
    print(f"best upgrade target : C{int(np.argmax(value)) + 1} (the fastest — Thm 3)")
    print(f"most critical       : C{int(np.argmax(contrib)) + 1}")

    # --- is machine n+1 worth it? ---------------------------------------
    print("\nmarginal value of one more machine:")
    for rho_new in (1.0, 0.5, 0.1):
        gain = marginal_computer_value(fleet, params, rho_new)
        print(f"  a rate-{rho_new:g} machine adds {gain:8.3f} to X "
              f"({100 * gain / saturation_x(params):.3f}% of the ceiling)")

    # --- how far from saturation are we? --------------------------------
    frac = saturation_fraction(fleet, params)
    print(f"\nceiling X_inf = {saturation_x(params):,.0f}; "
          f"fleet uses {100 * frac:.2f}% of it")
    n95 = cluster_size_for_coverage(0.5, params, 0.95)
    print(f"reaching 95% of the ceiling with rate-0.5 machines takes "
          f"{n95:,.0f} of them — diminishing returns are steep")

    # --- network what-ifs ------------------------------------------------
    taus = np.geomspace(1e-6, 0.05, 6)
    sweep = sweep_tau(fleet, taus, pi=params.pi, delta=params.delta)
    print("\nwork rate vs network transit rate:")
    for tau, rate in zip(sweep.values, sweep.work_rate):
        print(f"  tau = {tau:8.2e}: {rate:8.3f} work units per time unit")

    rival = Profile.homogeneous(fleet.n, fleet.mean)
    crossover = find_tau_crossover(fleet, rival, pi=params.pi, delta=params.delta)
    if crossover is None:
        print("\nthe heterogeneous fleet beats its equal-mean homogeneous "
              "rival at every network speed tested")
    else:
        print(f"\nranking vs the equal-mean homogeneous rival flips at "
              f"tau = {crossover:.4g}")


if __name__ == "__main__":
    main()
