#!/usr/bin/env python3
"""Cluster procurement: spend a budget on machines, guided by the theory.

A buyer with a fixed budget faces the paper's abstract question head-on:
"Is one better off with a cluster that has one superfast computer and
the rest of average speed, or with a cluster all of whose computers are
moderately fast?"  This example prices three candidate fleets with equal
mean speed, ranks them with every predictor the paper studies, checks
the predictions against ground truth, and sizes the winner against a
deadline using the Cluster-Rental dual.

Run:  python examples/cluster_procurement.py
"""

from repro import PAPER_TABLE1, Profile, hecr, x_measure
from repro.cep import ClusterRentalProblem, min_prefix_for_deadline
from repro.predictors import (
    cross_product_dominance,
    minorization_predicts,
    variance_prediction,
)


def main() -> None:
    params = PAPER_TABLE1

    fleets = {
        "one hero + commodity": Profile([0.1] + [0.55] * 8),   # mean 0.5
        "all mid-range":        Profile([0.5] * 9),            # mean 0.5
        "two-tier":             Profile([0.3] * 4 + [0.66] * 5),  # mean 0.5
    }
    for name, fleet in fleets.items():
        assert abs(fleet.mean - 0.5) < 1e-12, name

    print("candidate fleets (equal mean rho = 0.5, i.e. equal total 'spend'):")
    ranked = []
    for name, fleet in fleets.items():
        x = x_measure(fleet, params)
        h = hecr(fleet, params)
        ranked.append((x, name, fleet, h))
        print(f"  {name:22s} var={fleet.variance:.4f}  X={x:7.2f}  HECR={h:.4f}")
    ranked.sort(reverse=True)
    print(f"\nground truth winner: {ranked[0][1]}")

    # --- what the profile-only predictors say --------------------------
    print("\npairwise predictor verdicts:")
    names = list(fleets)
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            a, b = fleets[names[i]], fleets[names[j]]
            var_call = variance_prediction(a, b)
            var_text = names[i] if var_call == 0 else (
                names[j] if var_call == 1 else "no call")
            cp = cross_product_dominance(a, b).verdict.value
            mino = minorization_predicts(a, b).value
            truth = names[i] if x_measure(a, params) > x_measure(b, params) else names[j]
            print(f"  {names[i]} vs {names[j]}:")
            print(f"    variance predicts : {var_text}")
            print(f"    cross-product     : {cp}")
            print(f"    minorization      : {mino}")
            print(f"    ground truth      : {truth}")

    # --- deadline sizing with the CRP dual ------------------------------
    winner = ranked[0][2]
    workload = 10_000.0
    crp = ClusterRentalProblem(winner, params, workload)
    print(f"\nrenting the winner for {workload:,.0f} work units takes "
          f"{crp.optimal_lifespan:,.1f} time units")
    deadline = crp.optimal_lifespan * 1.5
    k = min_prefix_for_deadline(winner, params, workload, deadline)
    print(f"with a {deadline:,.1f}-unit deadline, only the {k} fastest "
          f"machines are actually needed")


if __name__ == "__main__":
    main()
