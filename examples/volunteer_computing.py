#!/usr/bin/env python3
"""Volunteer computing: exploiting a wildly heterogeneous swarm.

The paper motivates the CEP with SETI@home-style workloads: huge pools
of independent equal-size tasks farmed out to donated machines of wildly
varying speed.  This example builds such a swarm from a power-law speed
distribution, asks the paper's questions about it, and executes a full
work-distribution round in the discrete-event simulator:

* How much is the swarm worth, in "equivalent dedicated nodes" (HECR)?
* Is the swarm's heterogeneity helping or hurting vs a homogeneous farm
  of the same mean speed?  (Theorem 5 / Corollary 1 territory.)
* How should the server apportion tasks (FIFO quanta), and does the
  event-level execution deliver the analytic promise?

Run:  python examples/volunteer_computing.py
"""

import numpy as np

from repro import PAPER_TABLE1, Profile, hecr, work_production, x_measure
from repro.predictors import moment_summary
from repro.protocols import fifo_allocation
from repro.sampling import power_profile
from repro.simulation import simulate_allocation


def main() -> None:
    rng = np.random.default_rng(17)
    params = PAPER_TABLE1
    swarm = power_profile(rng, 200, gamma=3.0, low=0.02).power_ordered()

    stats = moment_summary(swarm)
    print(f"volunteer swarm: {swarm.n} machines")
    print(f"  rho range  [{swarm.fastest_rho:.3f}, {swarm.slowest_rho:.3f}]")
    print(f"  mean {stats.mean:.3f}, variance {stats.variance:.4f}, "
          f"skewness {stats.skewness:+.2f}")

    # --- worth of the swarm -------------------------------------------
    x = x_measure(swarm, params)
    rho_c = hecr(swarm, params)
    print(f"\nX-measure {x:.1f}; HECR {rho_c:.4f}")
    print(f"  => worth {swarm.n} dedicated nodes of rate {rho_c:.4f}")

    # --- does heterogeneity help? -------------------------------------
    homogeneous_twin = Profile.homogeneous(swarm.n, stats.mean)
    x_twin = x_measure(homogeneous_twin, params)
    print(f"\nhomogeneous twin (same mean speed): X = {x_twin:.1f}")
    if x > x_twin:
        print(f"  heterogeneity LENDS power here: x{x / x_twin:.2f} more work "
              f"than the equal-mean homogeneous farm")
    else:
        print(f"  heterogeneity costs power here: x{x_twin / x:.2f}")

    # --- one distribution round, end to end ---------------------------
    lifespan = 600.0
    allocation = fifo_allocation(swarm, params, lifespan)
    promised = work_production(swarm, params, lifespan)
    print(f"\none {lifespan:g}-unit round: {promised:,.0f} tasks promised")
    top = np.argsort(allocation.w)[::-1][:5]
    print("  largest quanta:")
    for c in top:
        print(f"    machine {c:3d} (rho={swarm[int(c)]:.3f}): "
              f"{allocation.w[c]:10,.1f} tasks")
    slowest = int(np.argmax(swarm.rho))
    print(f"  slowest machine {slowest} gets {allocation.w[slowest]:,.1f} tasks")

    result = simulate_allocation(allocation)
    print(f"\nsimulated: {result.completed_work:,.1f} tasks completed, "
          f"{result.events_processed} events, "
          f"all-finished={result.all_completed}")


if __name__ == "__main__":
    main()
