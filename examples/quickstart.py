#!/usr/bin/env python3
"""Quickstart: measure a heterogeneous cluster's power.

Walks the paper's core workflow on a small ad-hoc cluster:

1. describe the cluster by its heterogeneity profile;
2. compute the X-measure and asymptotic work production (Theorem 2);
3. calibrate it against homogeneous clusters via the HECR (Prop. 1);
4. schedule the optimal FIFO worksharing protocol and execute it in the
   discrete-event simulator to confirm the analytics.

Run:  python examples/quickstart.py
"""

from repro import PAPER_TABLE1, Profile, hecr, work_production, x_measure
from repro.core.homogeneous import homogeneous_size_for_x
from repro.protocols import build_timeline, check_allocation, fifo_allocation
from repro.simulation import simulate_allocation


def main() -> None:
    # A little cluster: one old workstation (ρ=1, the time-unit reference),
    # one mid-range box twice as fast, and two fast nodes.
    cluster = Profile([1.0, 0.5, 0.3, 0.25])
    params = PAPER_TABLE1      # τ=1 µs, π=10 µs, δ=1 per work unit
    lifespan = 3600.0          # rent the cluster for an hour of work-time units

    print("cluster profile:", list(cluster))
    print(f"mean rho {cluster.mean:.3f}, variance {cluster.variance:.4f}")

    # --- the paper's power measures -----------------------------------
    x = x_measure(cluster, params)
    print(f"\nX-measure:            {x:.4f}")
    print(f"work in lifespan:     {work_production(cluster, params, lifespan):,.1f} units")

    rho_c = hecr(cluster, params)
    print(f"HECR:                 {rho_c:.4f}  "
          f"(equivalent to {cluster.n} machines of rate {rho_c:.3f})")
    n_commodity = homogeneous_size_for_x(1.0, x, params)
    print(f"commodity equivalent: {n_commodity:.2f} machines of rate 1.0")

    # --- schedule and execute the optimal protocol --------------------
    allocation = fifo_allocation(cluster, params, lifespan)
    print(f"\nFIFO allocation (work units per computer):")
    for c, w in enumerate(allocation.w):
        print(f"  C{c + 1} (rho={cluster[c]:.2f}): {w:12,.1f}  "
              f"({100 * allocation.work_fractions[c]:.1f}%)")

    report = check_allocation(allocation)
    print(f"\nschedule feasible: {report.feasible}")
    timeline = build_timeline(allocation)
    print(f"network utilisation: {100 * timeline.utilization('network'):.4f}%")

    result = simulate_allocation(allocation)
    print(f"\ndiscrete-event execution: {result.completed_work:,.1f} units "
          f"completed in {result.events_processed} events")
    drift = abs(result.completed_work - allocation.total_work) / allocation.total_work
    print(f"simulated vs analytic drift: {drift:.2e}")


if __name__ == "__main__":
    main()
